#include "fault/repro.hpp"

#include <fstream>
#include <sstream>

namespace bprc::fault {

namespace {

std::string join_ints(const std::vector<int>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(v[i]);
  }
  return out;
}

bool fail_with(std::string* err, const std::string& message) {
  if (err != nullptr) *err = message;
  return false;
}

}  // namespace

std::string serialize_repro(const Repro& repro) {
  std::ostringstream out;
  out << "bprc-repro v" << repro.version << "\n";
  out << "protocol " << repro.run.protocol << "\n";
  out << "inputs " << join_ints(repro.run.inputs) << "\n";
  out << "adversary " << repro.run.adversary << "\n";
  out << "seed " << repro.run.seed << "\n";
  out << "max-steps " << repro.run.max_steps << "\n";
  // Weak-register lines are omitted entirely under atomic semantics so
  // historical artifacts keep their exact bytes.
  if (repro.run.semantics != RegisterSemantics::kAtomic) {
    out << "semantics " << to_string(repro.run.semantics) << "\n";
  }
  // Same contract for the space lane: the default budget writes nothing.
  if (!repro.run.space.is_default()) {
    out << "space " << repro.run.space.to_string() << "\n";
  }
  out << "failure " << to_string(repro.failure) << "\n";
  if (!repro.note.empty()) out << "note " << repro.note << "\n";
  if (repro.generative) out << "mode generative\n";
  for (const auto& crash : repro.run.crash_plan) {
    out << "plan-crash " << crash.at_step << " " << crash.victim << "\n";
  }
  for (const auto& crash : repro.crashes) {
    out << "crash " << crash.at_step << " " << crash.victim << "\n";
  }
  if (!repro.flips.empty()) {
    out << "flips";
    for (const bool b : repro.flips) out << " " << (b ? 1 : 0);
    out << "\n";
  }
  if (!repro.stales.empty()) {
    out << "stale-reads";
    for (const int c : repro.stales) out << " " << c;
    out << "\n";
  }
  out << "schedule";
  for (const ProcId p : repro.schedule) out << " " << p;
  out << "\nend\n";
  return out.str();
}

std::optional<Repro> parse_repro(const std::string& text, std::string* err) {
  std::istringstream in(text);
  std::string line;
  Repro repro;
  std::string dummy;
  if (err == nullptr) err = &dummy;

  if (!std::getline(in, line) || line.rfind("bprc-repro v", 0) != 0) {
    fail_with(err, "not a bprc-repro file (missing header)");
    return std::nullopt;
  }
  repro.version = std::atoi(line.c_str() + 12);
  if (repro.version != 1) {
    fail_with(err, "unsupported bprc-repro version");
    return std::nullopt;
  }

  // A malformed artifact must be rejected, never mis-replayed: a schedule
  // line that silently dropped its tail at the first garbage token would
  // replay a *different* run and report its verdict as if it were the
  // recorded one. Hence: every numeric list must consume its whole line,
  // and single-valued sections may appear at most once.
  const auto trailing_garbage = [](std::istringstream& fields) {
    // operator>> stopped early: failbit without eof means a bad token.
    return fields.fail() && !fields.eof();
  };
  const auto leftover = [](std::istringstream& fields) {
    // Fixed-arity lines must consume the whole line: "seed 7 oops" (or a
    // crash line with a third number) is a corrupt or mis-edited
    // artifact, not a seed of 7.
    std::string rest;
    return static_cast<bool>(fields >> rest);
  };
  bool saw_protocol = false, saw_inputs = false, saw_adversary = false;
  bool saw_seed = false, saw_max_steps = false, saw_failure = false;
  bool saw_schedule = false, saw_flips = false, saw_note = false;
  bool saw_mode = false, saw_semantics = false, saw_stales = false;
  bool saw_space = false;
  const auto duplicate = [&](bool& flag, const char* what) {
    if (flag) {
      fail_with(err, std::string("duplicate ") + what + " section");
      return true;
    }
    flag = true;
    return false;
  };

  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "protocol") {
      if (duplicate(saw_protocol, "protocol")) return std::nullopt;
      fields >> repro.run.protocol;
    } else if (key == "inputs") {
      if (duplicate(saw_inputs, "inputs")) return std::nullopt;
      int v = 0;
      while (fields >> v) repro.run.inputs.push_back(v);
      if (trailing_garbage(fields)) {
        fail_with(err, "malformed inputs line: " + line);
        return std::nullopt;
      }
    } else if (key == "adversary") {
      if (duplicate(saw_adversary, "adversary")) return std::nullopt;
      fields >> repro.run.adversary;
    } else if (key == "seed") {
      if (duplicate(saw_seed, "seed")) return std::nullopt;
      if (!(fields >> repro.run.seed) || leftover(fields)) {
        fail_with(err, "malformed seed line: " + line);
        return std::nullopt;
      }
    } else if (key == "max-steps") {
      if (duplicate(saw_max_steps, "max-steps")) return std::nullopt;
      if (!(fields >> repro.run.max_steps) || leftover(fields)) {
        fail_with(err, "malformed max-steps line: " + line);
        return std::nullopt;
      }
    } else if (key == "semantics") {
      if (duplicate(saw_semantics, "semantics")) return std::nullopt;
      std::string name;
      fields >> name;
      // Reject, never guess: a semantics this build does not know would
      // silently replay under the wrong register model and report its
      // verdict as if it were the recorded one.
      if (!register_semantics_from_string(name, &repro.run.semantics)) {
        fail_with(err, "unrecognized register semantics '" + name +
                           "' (this build knows atomic, regular, safe): " +
                           line);
        return std::nullopt;
      }
      if (leftover(fields)) {
        fail_with(err, "malformed semantics line: " + line);
        return std::nullopt;
      }
    } else if (key == "space") {
      if (duplicate(saw_space, "space")) return std::nullopt;
      std::string rest;
      std::getline(fields, rest);
      // Reject, never guess (the semantics precedent): a malformed
      // budget silently replaced by the default would replay a different
      // protocol layout and report its verdict as if it were recorded.
      std::string why;
      const auto parsed = SpaceBudget::parse(rest, &why);
      if (!parsed.has_value()) {
        fail_with(err, "malformed space line (" + why + "): " + line);
        return std::nullopt;
      }
      repro.run.space = *parsed;
    } else if (key == "stale-reads") {
      if (duplicate(saw_stales, "stale-reads")) return std::nullopt;
      int c = 0;
      while (fields >> c) {
        if (c < 0) {
          fail_with(err, "malformed stale-reads line (choices are >= 0): " +
                             line);
          return std::nullopt;
        }
        repro.stales.push_back(c);
      }
      if (trailing_garbage(fields)) {
        fail_with(err, "malformed stale-reads line: " + line);
        return std::nullopt;
      }
    } else if (key == "failure") {
      if (duplicate(saw_failure, "failure")) return std::nullopt;
      std::string name;
      fields >> name;
      repro.failure = failure_class_from_string(name);
    } else if (key == "note") {
      if (duplicate(saw_note, "note")) return std::nullopt;
      std::getline(fields, repro.note);
      if (!repro.note.empty() && repro.note.front() == ' ') {
        repro.note.erase(repro.note.begin());
      }
    } else if (key == "mode") {
      if (duplicate(saw_mode, "mode")) return std::nullopt;
      std::string mode;
      fields >> mode;
      if (mode != "generative") {
        fail_with(err, "unknown replay mode: " + line);
        return std::nullopt;
      }
      repro.generative = true;
    } else if (key == "plan-crash" || key == "crash") {
      CrashPlanAdversary::Crash crash{};
      if (!(fields >> crash.at_step >> crash.victim) || leftover(fields)) {
        fail_with(err, "malformed crash line: " + line);
        return std::nullopt;
      }
      (key == "crash" ? repro.crashes : repro.run.crash_plan).push_back(crash);
    } else if (key == "flips") {
      if (duplicate(saw_flips, "flips")) return std::nullopt;
      int b = 0;
      while (fields >> b) {
        if (b != 0 && b != 1) {
          fail_with(err, "malformed flips line (bits only): " + line);
          return std::nullopt;
        }
        repro.flips.push_back(b == 1);
      }
      if (trailing_garbage(fields)) {
        fail_with(err, "malformed flips line (bits only): " + line);
        return std::nullopt;
      }
    } else if (key == "schedule") {
      if (duplicate(saw_schedule, "schedule")) return std::nullopt;
      ProcId p = -1;
      while (fields >> p) repro.schedule.push_back(p);
      if (trailing_garbage(fields)) {
        fail_with(err, "malformed schedule line: " + line);
        return std::nullopt;
      }
    }
    // Unknown keys: skipped for forward compatibility.
  }

  if (!saw_end) {
    fail_with(err, "truncated bprc-repro file (missing 'end')");
    return std::nullopt;
  }
  if (repro.run.protocol.empty() || repro.run.inputs.empty()) {
    fail_with(err, "bprc-repro file missing protocol or inputs");
    return std::nullopt;
  }
  if (repro.run.max_steps == 0) {
    fail_with(err, "bprc-repro file missing max-steps");
    return std::nullopt;
  }
  if (repro.run.n() > kRunnableMaskBits) {
    // Replay depends on the simulator's O(1) runnable digest being
    // authoritative for every recorded pick; a wider configuration would
    // replay outside that validated envelope. Refuse loudly instead.
    fail_with(err, "recorded n=" + std::to_string(repro.run.n()) +
                       " exceeds this build's runnable-bitmask width (" +
                       std::to_string(kRunnableMaskBits) +
                       " processes); cannot replay this artifact");
    return std::nullopt;
  }
  for (const ProcId p : repro.schedule) {
    if (p < 0 || p >= repro.run.n()) {
      fail_with(err, "schedule entry out of range");
      return std::nullopt;
    }
  }
  for (const auto& crash : repro.crashes) {
    if (crash.victim < 0 || crash.victim >= repro.run.n()) {
      fail_with(err, "crash victim out of range");
      return std::nullopt;
    }
  }
  if (!repro.stales.empty() &&
      repro.run.semantics == RegisterSemantics::kAtomic) {
    // Choices that can never be consumed mean the artifact lost (or never
    // had) its semantics line — replaying it atomically would not be the
    // recorded run.
    fail_with(err, "stale-reads present but semantics is atomic");
    return std::nullopt;
  }
  return repro;
}

bool save_repro(const std::string& path, const Repro& repro) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << serialize_repro(repro);
  return static_cast<bool>(out);
}

std::optional<Repro> load_repro(const std::string& path, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_repro(buffer.str(), err);
}

ConsensusRunResult replay_repro(const Repro& repro) {
  if (repro.generative) {
    // Re-execute with the original adversary and seed — the only faithful
    // replay when no schedule could be recorded (worker-killing trials).
    return execute_run(repro.run, std::chrono::nanoseconds::zero(),
                       /*schedule=*/nullptr, /*crashes=*/nullptr);
  }
  return replay_run(repro.run, repro.schedule, repro.crashes,
                    /*reuse=*/nullptr,
                    repro.flips.empty() ? nullptr : &repro.flips,
                    repro.stales);
}

Repro make_repro(const TortureFailure& fail,
                 const std::vector<ProcId>& schedule,
                 const std::vector<CrashPlanAdversary::Crash>& crashes) {
  Repro repro;
  repro.run = fail.run;
  repro.failure = fail.failure;
  repro.schedule = schedule;
  repro.crashes = crashes;
  repro.stales = fail.stales;
  if (fail.failure == FailureClass::kWorkerCrash) {
    // The trial killed its worker before any trace could be streamed
    // back; only a generative re-execution reproduces it.
    repro.generative = true;
    repro.note = "trial killed its worker process (quarantined); "
                 "generative replay will re-trigger the crash";
    return repro;
  }
  std::string note = "reason=";
  note += to_string(fail.reason);
  note += " decisions=";
  note += join_ints(fail.result.decisions);
  repro.note = note;
  return repro;
}

}  // namespace bprc::fault
