#include "fault/campaign.hpp"

#include <algorithm>
#include <utility>

#include "engine/adversaries.hpp"
#include "engine/executor.hpp"
#include "fault/protocols.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bprc::fault {

const std::vector<std::string>& torture_adversary_names() {
  return engine::adversary_names();
}

std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          std::uint64_t seed) {
  return engine::make_adversary(name, seed);
}

bool adversary_injects_crashes(const std::string& name) {
  return engine::adversary_injects_crashes(name);
}

engine::TrialSpec to_trial_spec(const TortureRun& run,
                                std::chrono::nanoseconds deadline,
                                bool record) {
  engine::TrialSpec spec;
  spec.protocol = run.protocol;
  spec.factory = make_protocol(run.protocol, run.n(), run.seed, run.space);
  spec.space = run.space;
  spec.inputs = run.inputs;
  spec.adversary = run.adversary;
  spec.crash_plan = run.crash_plan;
  spec.seed = run.seed;
  spec.max_steps = run.max_steps;
  spec.deadline = deadline;
  spec.record = record;
  spec.semantics = run.semantics;
  return spec;
}

ConsensusRunResult execute_run(
    const TortureRun& run, std::chrono::nanoseconds deadline,
    std::vector<ProcId>* schedule,
    std::vector<CrashPlanAdversary::Crash>* crashes, SimReuse* reuse) {
  const bool record = schedule != nullptr || crashes != nullptr;
  engine::TrialOutcome out =
      engine::run_trial(to_trial_spec(run, deadline, record), reuse);
  if (schedule != nullptr) *schedule = std::move(out.schedule);
  if (crashes != nullptr) *crashes = std::move(out.crashes);
  return out.result;
}

ConsensusRunResult replay_run(
    const TortureRun& run, const std::vector<ProcId>& schedule,
    const std::vector<CrashPlanAdversary::Crash>& crashes, SimReuse* reuse,
    const std::vector<bool>* forced_flips, const std::vector<int>& stales) {
  // Scripted replay: the recorded crashes subsume the run's own plan.
  engine::TrialSpec spec =
      to_trial_spec(run, std::chrono::nanoseconds::zero(), /*record=*/false);
  spec.scripted = true;
  spec.schedule = schedule;
  spec.crash_plan = crashes;
  if (forced_flips != nullptr) spec.forced_flips = *forced_flips;
  spec.forced_stales = stales;
  return engine::run_trial(spec, reuse).result;
}

namespace {

/// Seeded crash plan: 1..n-1 distinct victims at early-run steps, sorted.
/// Early triggers matter more than late ones — the protocols' vulnerable
/// window is while preferences are still contested.
std::vector<CrashPlanAdversary::Crash> seeded_crash_plan(Rng& rng, int n) {
  const int max_kills = n - 1;
  if (max_kills <= 0) return {};
  const int kills = 1 + static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(max_kills)));
  std::vector<ProcId> victims;
  for (ProcId p = 0; p < n; ++p) victims.push_back(p);
  for (std::size_t i = victims.size(); i > 1; --i) {
    std::swap(victims[i - 1], victims[rng.below(i)]);
  }
  std::vector<CrashPlanAdversary::Crash> plan;
  for (int k = 0; k < kills; ++k) {
    plan.push_back({rng.below(4000), victims[static_cast<std::size_t>(k)]});
  }
  std::sort(plan.begin(), plan.end(),
            [](const auto& a, const auto& b) { return a.at_step < b.at_step; });
  return plan;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001B3ULL;
  return h;
}

std::uint64_t fnv_mix_string(std::uint64_t h, const std::string& s) {
  for (const char c : s) h = fnv_mix(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

/// Enumerates the full sweep matrix up front, in the exact order the old
/// serial loop visited it. Cheap relative to execution (a TortureRun is a
/// few dozen bytes; campaigns are thousands of cells), and it makes the
/// spec stream trivially deterministic: the engine's generator is just an
/// index walk over this vector, at any jobs level — and the shard
/// coordinator's workers are just index *ranges* over it.
std::vector<TortureRun> enumerate_campaign_runs(
    const CampaignConfig& config, std::uint64_t* skipped_crash_cells,
    std::uint64_t* skipped_safe_cells, std::uint64_t* skipped_space_cells) {
  std::uint64_t skipped_local = 0;
  std::uint64_t skipped_safe_local = 0;
  std::uint64_t skipped_space_local = 0;
  if (skipped_crash_cells == nullptr) skipped_crash_cells = &skipped_local;
  if (skipped_safe_cells == nullptr) skipped_safe_cells = &skipped_safe_local;
  if (skipped_space_cells == nullptr) {
    skipped_space_cells = &skipped_space_local;
  }
  const std::vector<std::string> protocols =
      config.protocols.empty() ? protocol_names() : config.protocols;
  const std::vector<std::string> adversaries = config.adversaries.empty()
                                                   ? torture_adversary_names()
                                                   : config.adversaries;
  const std::vector<RegisterSemantics> semantics_axis =
      config.semantics.empty()
          ? std::vector<RegisterSemantics>{RegisterSemantics::kAtomic}
          : config.semantics;
  const std::vector<SpaceBudget> space_axis =
      config.spaces.empty() ? std::vector<SpaceBudget>{SpaceBudget{}}
                            : config.spaces;
  Rng sweep_rng(config.seed0 ^ 0x70727475ULL);  // independent plan stream
  std::vector<TortureRun> runs;

  // Outermost space and semantics loops: with the default single-entry
  // axes (paper budget, atomic) the enumeration — including the stateful
  // crash-plan rng stream — is byte-identical to the historical matrix.
  for (const SpaceBudget& space : space_axis) {
  for (const RegisterSemantics sem : semantics_axis) {
  for (const std::string& protocol : protocols) {
    const ProtocolSpec& spec = protocol_spec(protocol);
    const bool crash_tolerant = spec.crash_tolerant;
    const bool skip_safe =
        sem == RegisterSemantics::kSafe && !spec.tolerates_safe_reads;
    const bool skip_space = !space.is_default() && !spec.space_sensitive;
    for (const int n : config.ns) {
      for (std::uint64_t k = 0; k < config.seeds_per_cell; ++k) {
        // One seed covers every (adversary × pattern × plan) combination
        // of the cell: identical schedules across protocols at the same
        // coordinates, so cross-protocol comparisons stay meaningful.
        const std::uint64_t seed = config.seed0 + k * 7919;
        const auto patterns = standard_input_patterns(n, seed);
        for (const std::string& adversary : adversaries) {
          for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
            for (const bool with_plan : {false, true}) {
              if (with_plan && !config.crash_plans) continue;
              if (skip_space) {
                // A space-insensitive protocol would execute the exact
                // same instance at every budget; skip and count, like
                // the safe/crash skips below.
                ++*skipped_space_cells;
                continue;
              }
              if (skip_safe) {
                // Safe-register junk would trip the protocol's own
                // always-on invariants and abort the process; skip and
                // count, exactly like crash cells below.
                ++*skipped_safe_cells;
                continue;
              }
              if (!crash_tolerant &&
                  (with_plan || adversary_injects_crashes(adversary))) {
                // Skip once per (adversary, plan) pair, not silently: the
                // report carries the count so nobody mistakes a skipped
                // cell for a covered one.
                ++*skipped_crash_cells;
                continue;
              }
              TortureRun run;
              run.protocol = protocol;
              run.inputs = patterns[pi];
              run.adversary = adversary;
              run.seed = seed ^ (pi * 0x9E37ULL);
              run.max_steps = config.max_steps;
              run.semantics = sem;
              run.space = space;
              if (with_plan) {
                run.crash_plan = seeded_crash_plan(sweep_rng, n);
                if (run.crash_plan.empty()) continue;  // n == 1
              }
              runs.push_back(std::move(run));
            }
          }
        }
      }
    }
  }
  }
  }
  return runs;
}

std::uint64_t outcome_digest(const engine::TrialOutcome& out) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const ProcId p : out.schedule) {
    h = fnv_mix(h, static_cast<std::uint64_t>(p));
  }
  for (const auto& c : out.crashes) {
    h = fnv_mix(h, c.at_step * 31 + static_cast<std::uint64_t>(c.victim));
  }
  for (const int d : out.result.decisions) {
    h = fnv_mix(h, static_cast<std::uint64_t>(d + 1));
  }
  h = fnv_mix(h, out.result.total_steps);
  h = fnv_mix(h, static_cast<std::uint64_t>(out.result.failure()));
  // Recorded stale-read choices: empty under atomic semantics, so the
  // historical atomic digests are untouched; under weakened semantics the
  // adversary's choices become part of the independence witness.
  for (const int c : out.stales) {
    h = fnv_mix(h, static_cast<std::uint64_t>(c + 1));
  }
  return h;
}

std::uint64_t quarantined_digest() {
  // The shape of outcome_digest over an empty outcome, with kWorkerCrash
  // as the failure class: no schedule, no crashes, no decisions, zero
  // steps. Any coordinator that quarantines the same index folds the
  // same value.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv_mix(h, 0);  // total_steps
  h = fnv_mix(h, static_cast<std::uint64_t>(FailureClass::kWorkerCrash));
  return h;
}

OutcomeRecord make_outcome_record(TortureRun&& run,
                                  engine::TrialOutcome&& out) {
  OutcomeRecord record;
  record.digest = outcome_digest(out);
  record.steps = out.result.total_steps;
  record.reason = out.result.reason;
  record.failure = out.result.failure();
  // Liveness downgrade (docs/REGISTER_SEMANTICS.md): a protocol whose
  // termination proof assumes atomic registers can be starved forever by
  // an adversary serving stale values to every racing read. A budget or
  // deadline stop under weakened semantics is inconclusive for such a
  // protocol — count it as an abort (fold_outcome_record still does),
  // don't report a failure. The digest above folds the raw outcome, so
  // every jobs/workers/shard lane chains the same value.
  if (record.failure == FailureClass::kTermination &&
      run.semantics != RegisterSemantics::kAtomic &&
      (record.reason == RunResult::Reason::kBudget ||
       record.reason == RunResult::Reason::kDeadline) &&
      !protocol_spec(run.protocol).live_under_stale_reads) {
    record.failure = FailureClass::kNone;
  }
  if (record.failure != FailureClass::kNone) {
    TortureFailure failure;
    failure.run = std::move(run);
    failure.failure = out.result.failure();
    failure.reason = out.result.reason;
    failure.schedule = std::move(out.schedule);
    failure.crashes = std::move(out.crashes);
    failure.stales = std::move(out.stales);
    failure.result = std::move(out.result);
    record.detail = std::move(failure);
  }
  return record;
}

bool fold_outcome_record(CampaignReport& report, OutcomeRecord&& record,
                         std::size_t max_failures) {
  ++report.runs;
  if (record.reason == RunResult::Reason::kDeadline) {
    ++report.deadline_aborts;
  } else if (record.reason == RunResult::Reason::kBudget) {
    ++report.budget_aborts;
  }
  report.summary_digest = fnv_mix(report.summary_digest, record.digest);
  if (record.failure != FailureClass::kNone) {
    // A failed run always carries its detail; a record stripped of it
    // (a shard file past its detail cap) still counts and chains, it
    // just cannot be shrunk/persisted — which the fold never needs,
    // because it stops at max_failures detailed ones.
    if (record.detail.has_value()) {
      report.failures.push_back(std::move(*record.detail));
    }
    if (report.failures.size() >= max_failures) return false;
  }
  return true;
}

std::uint64_t campaign_matrix_fingerprint(
    const CampaignConfig& config, const std::vector<TortureRun>& runs) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv_mix(h, runs.size());
  h = fnv_mix(h, config.max_failures);
  h = fnv_mix(h, static_cast<std::uint64_t>(config.run_deadline.count()));
  for (const TortureRun& run : runs) {
    h = fnv_mix_string(h, run.protocol);
    for (const int v : run.inputs) {
      h = fnv_mix(h, static_cast<std::uint64_t>(v + 1));
    }
    h = fnv_mix_string(h, run.adversary);
    for (const auto& c : run.crash_plan) {
      h = fnv_mix(h, c.at_step * 31 + static_cast<std::uint64_t>(c.victim));
    }
    h = fnv_mix(h, run.seed);
    h = fnv_mix(h, run.max_steps);
    // Folded only when weakened so atomic-only fingerprints (and shard
    // files already on disk) keep their historical values.
    if (run.semantics != RegisterSemantics::kAtomic) {
      h = fnv_mix(h, static_cast<std::uint64_t>(run.semantics));
    }
    // Same deal for the space lane: only non-default budgets fold, so
    // every pre-existing fingerprint keeps its bytes.
    if (!run.space.is_default()) {
      h = fnv_mix(h, static_cast<std::uint64_t>(run.space.K));
      h = fnv_mix(h, static_cast<std::uint64_t>(run.space.cycle_mult));
      h = fnv_mix(h, static_cast<std::uint64_t>(run.space.slots));
      h = fnv_mix(h, static_cast<std::uint64_t>(run.space.b));
      h = fnv_mix(h, static_cast<std::uint64_t>(run.space.m_scale));
    }
  }
  return h;
}

CampaignReport run_campaign(const CampaignConfig& config,
                            const RunObserver& observer) {
  CampaignReport report;
  std::vector<TortureRun> runs = enumerate_campaign_runs(
      config, &report.skipped_crash_cells, &report.skipped_safe_cells,
      &report.skipped_space_cells);

  std::size_t next = 0;
  const std::chrono::nanoseconds deadline = config.run_deadline;
  const auto generator = [&]() -> std::optional<engine::TrialSpec> {
    if (next >= runs.size()) return std::nullopt;
    return to_trial_spec(runs[next++], deadline, /*record=*/true);
  };

  const auto sink = [&](std::size_t index, const engine::TrialSpec&,
                        engine::TrialOutcome&& out) -> bool {
    if (config.stop_requested && config.stop_requested()) {
      report.interrupted = true;
      return false;
    }
    TortureRun& run = runs[index];
    if (observer) observer(run, out.result);
    return fold_outcome_record(
        report, make_outcome_record(std::move(run), std::move(out)),
        config.max_failures);
  };

  engine::TrialExecutor executor({config.jobs, 0});
  executor.run_trials(generator, sink);
  return report;
}

}  // namespace bprc::fault
