#include "fault/campaign.hpp"

#include <algorithm>
#include <utility>

#include "fault/protocols.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bprc::fault {

const std::vector<std::string>& torture_adversary_names() {
  static const std::vector<std::string> names = {
      "random",    "round-robin", "lockstep",    "leader-suppress",
      "coin-bias", "crash-storm", "split-brain",
  };
  return names;
}

std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          std::uint64_t seed) {
  if (name == "random") return std::make_unique<RandomAdversary>(seed);
  if (name == "round-robin") return std::make_unique<RoundRobinAdversary>();
  if (name == "lockstep") return std::make_unique<LockstepAdversary>(seed);
  if (name == "leader-suppress") {
    return std::make_unique<LeaderSuppressAdversary>(seed);
  }
  if (name == "coin-bias") return std::make_unique<CoinBiasAdversary>(seed);
  if (name == "crash-storm") return std::make_unique<CrashStormAdversary>(seed);
  if (name == "split-brain") return std::make_unique<SplitBrainAdversary>(seed);
  BPRC_REQUIRE(false, "unknown adversary name");
  __builtin_unreachable();
}

bool adversary_injects_crashes(const std::string& name) {
  return name == "crash-storm";
}

namespace {

/// Non-owning forwarder: lets execute_run keep the RecordingAdversary
/// alive past run_consensus_sim (the SimRuntime destroys the adversary it
/// owns before returning the result).
class BorrowedAdversary final : public Adversary {
 public:
  explicit BorrowedAdversary(Adversary& inner) : inner_(inner) {}
  ProcId pick(SimCtl& ctl) override { return inner_.pick(ctl); }
  std::string name() const override { return inner_.name(); }

 private:
  Adversary& inner_;
};

}  // namespace

ConsensusRunResult execute_run(
    const TortureRun& run, std::chrono::nanoseconds deadline,
    std::vector<ProcId>* schedule,
    std::vector<CrashPlanAdversary::Crash>* crashes, SimReuse* reuse) {
  std::unique_ptr<Adversary> adv = make_adversary(run.adversary, run.seed);
  if (!run.crash_plan.empty()) {
    adv = std::make_unique<CrashPlanAdversary>(std::move(adv), run.crash_plan);
  }
  RecordingAdversary recording(std::move(adv));

  const ConsensusRunResult result = run_consensus_sim(
      make_protocol(run.protocol, run.n(), run.seed), run.inputs,
      std::make_unique<BorrowedAdversary>(recording), run.seed, run.max_steps,
      deadline, reuse);

  if (schedule != nullptr) *schedule = recording.script();
  if (crashes != nullptr) *crashes = recording.crashes();
  return result;
}

ConsensusRunResult replay_run(
    const TortureRun& run, const std::vector<ProcId>& schedule,
    const std::vector<CrashPlanAdversary::Crash>& crashes, SimReuse* reuse,
    const std::vector<bool>* forced_flips) {
  std::unique_ptr<Adversary> adv = std::make_unique<ScriptedAdversary>(schedule);
  if (!crashes.empty()) {
    adv = std::make_unique<CrashPlanAdversary>(std::move(adv), crashes);
  }
  return run_consensus_sim(make_protocol(run.protocol, run.n(), run.seed),
                           run.inputs, std::move(adv), run.seed, run.max_steps,
                           std::chrono::nanoseconds::zero(), reuse,
                           forced_flips);
}

namespace {

/// Seeded crash plan: 1..n-1 distinct victims at early-run steps, sorted.
/// Early triggers matter more than late ones — the protocols' vulnerable
/// window is while preferences are still contested.
std::vector<CrashPlanAdversary::Crash> seeded_crash_plan(Rng& rng, int n) {
  const int max_kills = n - 1;
  if (max_kills <= 0) return {};
  const int kills = 1 + static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(max_kills)));
  std::vector<ProcId> victims;
  for (ProcId p = 0; p < n; ++p) victims.push_back(p);
  for (std::size_t i = victims.size(); i > 1; --i) {
    std::swap(victims[i - 1], victims[rng.below(i)]);
  }
  std::vector<CrashPlanAdversary::Crash> plan;
  for (int k = 0; k < kills; ++k) {
    plan.push_back({rng.below(4000), victims[static_cast<std::size_t>(k)]});
  }
  std::sort(plan.begin(), plan.end(),
            [](const auto& a, const auto& b) { return a.at_step < b.at_step; });
  return plan;
}

}  // namespace

CampaignReport run_campaign(const CampaignConfig& config,
                            const RunObserver& observer) {
  const std::vector<std::string> protocols =
      config.protocols.empty() ? protocol_names() : config.protocols;
  const std::vector<std::string> adversaries = config.adversaries.empty()
                                                   ? torture_adversary_names()
                                                   : config.adversaries;
  const std::chrono::nanoseconds deadline = config.run_deadline;

  CampaignReport report;
  Rng sweep_rng(config.seed0 ^ 0x70727475ULL);  // independent plan stream
  SimReuse reuse;  // one recycled simulator for the whole sweep

  for (const std::string& protocol : protocols) {
    const bool crash_tolerant = protocol_spec(protocol).crash_tolerant;
    for (const int n : config.ns) {
      for (std::uint64_t k = 0; k < config.seeds_per_cell; ++k) {
        // One seed covers every (adversary × pattern × plan) combination
        // of the cell: identical schedules across protocols at the same
        // coordinates, so cross-protocol comparisons stay meaningful.
        const std::uint64_t seed = config.seed0 + k * 7919;
        const auto patterns = standard_input_patterns(n, seed);
        for (const std::string& adversary : adversaries) {
          for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
            for (const bool with_plan : {false, true}) {
              if (with_plan && !config.crash_plans) continue;
              if (!crash_tolerant &&
                  (with_plan || adversary_injects_crashes(adversary))) {
                // Skip once per (adversary, plan) pair, not silently: the
                // report carries the count so nobody mistakes a skipped
                // cell for a covered one.
                ++report.skipped_crash_cells;
                continue;
              }
              TortureRun run;
              run.protocol = protocol;
              run.inputs = patterns[pi];
              run.adversary = adversary;
              run.seed = seed ^ (pi * 0x9E37ULL);
              run.max_steps = config.max_steps;
              if (with_plan) {
                run.crash_plan = seeded_crash_plan(sweep_rng, n);
                if (run.crash_plan.empty()) continue;  // n == 1
              }

              TortureFailure candidate;
              const ConsensusRunResult result =
                  execute_run(run, deadline, &candidate.schedule,
                              &candidate.crashes, &reuse);
              ++report.runs;
              if (result.reason == RunResult::Reason::kDeadline) {
                ++report.deadline_aborts;
              } else if (result.reason == RunResult::Reason::kBudget) {
                ++report.budget_aborts;
              }
              if (observer) observer(run, result);

              if (!result.ok()) {
                candidate.run = std::move(run);
                candidate.failure = result.failure();
                candidate.reason = result.reason;
                candidate.result = result;
                report.failures.push_back(std::move(candidate));
                if (report.failures.size() >= config.max_failures) {
                  return report;
                }
              }
            }
          }
        }
      }
    }
  }
  return report;
}

}  // namespace bprc::fault
