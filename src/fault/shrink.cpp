#include "fault/shrink.hpp"

#include <algorithm>
#include <optional>

#include "engine/executor.hpp"

namespace bprc::fault {

namespace {

using Crash = CrashPlanAdversary::Crash;

/// Bundles the fixed run parameters and the probe budget. Every probe —
/// sequential or batched — is a scripted-replay TrialSpec executed by the
/// engine; the budget is charged per *delivered* probe, so the spent
/// count (and therefore every later phase) is identical at every jobs
/// level even though parallel batches may execute candidates
/// speculatively past the first failure.
class Shrinker {
 public:
  /// `stales` is the failure's recorded stale-read choice sequence, held
  /// fixed across every probe: shrinking the schedule shifts which read
  /// consumes which choice, but each candidate is re-verified against the
  /// target failure class, so a committed candidate is a genuine
  /// counterexample whatever the choices now line up with. (Past the
  /// script's end ScriptedAdversary answers with the atomic value.)
  Shrinker(const TortureRun& run, FailureClass target,
           const std::vector<int>& stales, int max_probes, unsigned jobs)
      : run_(run), target_(target), stales_(stales), max_probes_(max_probes),
        executor_({jobs, 0}) {}

  bool budget_left() const { return probes_ < max_probes_; }
  int probes() const { return probes_; }

  /// Does this candidate still produce the target failure class? One
  /// sequential probe on the calling thread (the search phases that need
  /// the previous answer before forming the next candidate).
  bool fails(const std::vector<ProcId>& schedule,
             const std::vector<Crash>& crashes) {
    ++probes_;
    return engine::run_trial(replay_spec(schedule, crashes), &reuse_)
               .failure == target_;
  }

  /// Batched probe: the lowest `i < count` whose candidate (produced by
  /// `make(i)`, called in order) still fails with the target class, or
  /// nullopt. Candidates are independent, so the batch fans out across
  /// the executor's workers; ordered delivery + early stop make the
  /// answer — and the probes charged — independent of jobs. Generation
  /// is capped by the remaining budget, mirroring the serial loop's
  /// per-candidate budget check.
  std::optional<std::size_t> first_failing(
      std::size_t count,
      const std::function<std::pair<std::vector<ProcId>, std::vector<Crash>>(
          std::size_t)>& make) {
    std::size_t generated = 0;
    const int budget_at_entry = probes_;
    const auto generator = [&]() -> std::optional<engine::TrialSpec> {
      if (generated >= count) return std::nullopt;
      if (budget_at_entry + static_cast<int>(generated) >= max_probes_) {
        return std::nullopt;  // out of probe budget
      }
      auto [schedule, crashes] = make(generated);
      ++generated;
      return replay_spec(std::move(schedule), std::move(crashes));
    };
    std::optional<std::size_t> hit;
    const auto sink = [&](std::size_t index, const engine::TrialSpec&,
                          engine::TrialOutcome&& out) -> bool {
      ++probes_;
      if (out.failure == target_) {
        hit = index;
        return false;
      }
      return true;
    };
    executor_.run_trials(generator, sink);
    return hit;
  }

 private:
  engine::TrialSpec replay_spec(std::vector<ProcId> schedule,
                                std::vector<Crash> crashes) const {
    engine::TrialSpec spec =
        to_trial_spec(run_, std::chrono::nanoseconds::zero(),
                      /*record=*/false);
    spec.scripted = true;
    spec.schedule = std::move(schedule);
    spec.crash_plan = std::move(crashes);
    spec.forced_stales = stales_;
    return spec;
  }

  const TortureRun& run_;
  FailureClass target_;
  const std::vector<int>& stales_;
  int max_probes_;
  int probes_ = 0;
  SimReuse reuse_;  ///< recycled across the sequential probes
  engine::TrialExecutor executor_;  ///< batched probes (workers own reuse)
};

std::vector<ProcId> prefix(const std::vector<ProcId>& s, std::size_t len) {
  return {s.begin(), s.begin() + static_cast<std::ptrdiff_t>(len)};
}

/// Phase 2: shortest failing prefix. Failure need not be monotone in the
/// prefix length (the round-robin completion changes the tail), so every
/// candidate is verified and only verified prefixes are committed. A
/// binary search is inherently sequential — each probe's answer decides
/// the next candidate — so this phase stays on the one-probe path.
void truncate_prefix(Shrinker& sh, std::vector<ProcId>& schedule,
                     const std::vector<Crash>& crashes) {
  std::size_t lo = 0, hi = schedule.size();
  while (lo < hi && sh.budget_left()) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (sh.fails(prefix(schedule, mid), crashes)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (hi < schedule.size() && sh.fails(prefix(schedule, hi), crashes)) {
    schedule = prefix(schedule, hi);
  }
}

/// Phase 3: drop crash events (latest first — later crashes are least
/// likely to be load-bearing), then pull the survivors' trigger steps
/// toward zero. Each commit changes the baseline for the next candidate,
/// so these chains stay sequential too.
void minimize_crashes(Shrinker& sh, const std::vector<ProcId>& schedule,
                      std::vector<Crash>& crashes) {
  for (std::size_t i = crashes.size(); i-- > 0 && sh.budget_left();) {
    std::vector<Crash> without = crashes;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    if (sh.fails(schedule, without)) crashes = std::move(without);
  }
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    while (crashes[i].at_step > 0 && sh.budget_left()) {
      std::vector<Crash> earlier = crashes;
      earlier[i].at_step /= 2;
      if (!sh.fails(schedule, earlier)) break;
      crashes = std::move(earlier);
    }
  }
  // Halving can leave the plan unsorted; CrashPlanAdversary applies a
  // plan in list order, so restore trigger order if that still fails.
  std::vector<Crash> sorted = crashes;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Crash& a,
                                                    const Crash& b) {
    return a.at_step < b.at_step;
  });
  if (sh.budget_left() && sh.fails(schedule, sorted)) {
    crashes = std::move(sorted);
  }
}

/// Phase 4: ddmin chunk removal (Zeller–Hildebrandt). Granularity starts
/// at 2 chunks and doubles whenever no chunk can be removed; any
/// successful removal restarts the scan at the same granularity. The
/// candidates of one scan are independent (all derived from the current
/// schedule), so each scan is one batched first_failing call — the
/// shrinker's parallel hot spot.
void ddmin(Shrinker& sh, std::vector<ProcId>& schedule,
           const std::vector<Crash>& crashes) {
  std::size_t chunks = 2;
  while (schedule.size() >= 2 && chunks <= schedule.size() &&
         sh.budget_left()) {
    const std::size_t chunk_len =
        (schedule.size() + chunks - 1) / chunks;  // ceil
    const std::size_t candidates =
        (schedule.size() + chunk_len - 1) / chunk_len;
    const auto hit = sh.first_failing(
        candidates,
        [&](std::size_t ci)
            -> std::pair<std::vector<ProcId>, std::vector<Crash>> {
          const std::size_t start = ci * chunk_len;
          std::vector<ProcId> candidate;
          candidate.reserve(schedule.size());
          for (std::size_t i = 0; i < schedule.size(); ++i) {
            if (i < start || i >= start + chunk_len) {
              candidate.push_back(schedule[i]);
            }
          }
          return {std::move(candidate), crashes};
        });
    if (hit.has_value()) {
      const std::size_t start = *hit * chunk_len;
      std::vector<ProcId> shorter;
      shorter.reserve(schedule.size());
      for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (i < start || i >= start + chunk_len) shorter.push_back(schedule[i]);
      }
      schedule = std::move(shorter);
      // Rescan at the same granularity on the shorter schedule.
      chunks = std::max<std::size_t>(
          2, std::min(chunks, std::max<std::size_t>(schedule.size(), 1)));
    } else {
      if (chunks >= schedule.size()) break;  // singleton granularity done
      chunks = std::min(chunks * 2, schedule.size());
    }
  }
}

}  // namespace

ShrinkOutcome shrink_failure(const TortureFailure& fail, int max_probes,
                             unsigned jobs) {
  ShrinkOutcome out;
  out.failure = fail.failure;
  out.schedule = fail.schedule;
  out.crashes = fail.crashes;
  out.original_len = fail.schedule.size();

  // A worker-killing trial has no recorded trace to shrink, and probing
  // it in-process would re-trigger the crash *here*. Its artifact is the
  // generative repro (fault/repro.cpp); hand the failure back untouched.
  if (fail.failure == FailureClass::kWorkerCrash) return out;

  Shrinker sh(fail.run, fail.failure, fail.stales, max_probes, jobs);

  // Phase 1: the recorded trace must reproduce its own failure. Watchdog
  // aborts (wall-clock) are inherently non-replayable; everything else in
  // the simulator is deterministic.
  if (fail.failure == FailureClass::kNone ||
      fail.reason == RunResult::Reason::kDeadline ||
      !sh.fails(fail.schedule, fail.crashes)) {
    out.probes = sh.probes();
    return out;
  }
  out.reproduced = true;

  truncate_prefix(sh, out.schedule, out.crashes);
  minimize_crashes(sh, out.schedule, out.crashes);
  ddmin(sh, out.schedule, out.crashes);
  // A shorter schedule may have made more crashes redundant.
  minimize_crashes(sh, out.schedule, out.crashes);

  out.probes = sh.probes();
  return out;
}

}  // namespace bprc::fault
