#include "fault/shrink.hpp"

#include <algorithm>

namespace bprc::fault {

namespace {

using Crash = CrashPlanAdversary::Crash;

/// Bundles the fixed run parameters and the probe budget.
class Shrinker {
 public:
  Shrinker(const TortureRun& run, FailureClass target, int max_probes)
      : run_(run), target_(target), max_probes_(max_probes) {}

  bool budget_left() const { return probes_ < max_probes_; }
  int probes() const { return probes_; }

  /// Does this candidate still produce the target failure class?
  bool fails(const std::vector<ProcId>& schedule,
             const std::vector<Crash>& crashes) {
    ++probes_;
    return replay_run(run_, schedule, crashes, &reuse_).failure() == target_;
  }

 private:
  const TortureRun& run_;
  FailureClass target_;
  int max_probes_;
  int probes_ = 0;
  SimReuse reuse_;  ///< one simulator recycled across all probes
};

std::vector<ProcId> prefix(const std::vector<ProcId>& s, std::size_t len) {
  return {s.begin(), s.begin() + static_cast<std::ptrdiff_t>(len)};
}

/// Phase 2: shortest failing prefix. Failure need not be monotone in the
/// prefix length (the round-robin completion changes the tail), so every
/// candidate is verified and only verified prefixes are committed.
void truncate_prefix(Shrinker& sh, std::vector<ProcId>& schedule,
                     const std::vector<Crash>& crashes) {
  std::size_t lo = 0, hi = schedule.size();
  while (lo < hi && sh.budget_left()) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (sh.fails(prefix(schedule, mid), crashes)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (hi < schedule.size() && sh.fails(prefix(schedule, hi), crashes)) {
    schedule = prefix(schedule, hi);
  }
}

/// Phase 3: drop crash events (latest first — later crashes are least
/// likely to be load-bearing), then pull the survivors' trigger steps
/// toward zero.
void minimize_crashes(Shrinker& sh, const std::vector<ProcId>& schedule,
                      std::vector<Crash>& crashes) {
  for (std::size_t i = crashes.size(); i-- > 0 && sh.budget_left();) {
    std::vector<Crash> without = crashes;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    if (sh.fails(schedule, without)) crashes = std::move(without);
  }
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    while (crashes[i].at_step > 0 && sh.budget_left()) {
      std::vector<Crash> earlier = crashes;
      earlier[i].at_step /= 2;
      if (!sh.fails(schedule, earlier)) break;
      crashes = std::move(earlier);
    }
  }
  // Halving can leave the plan unsorted; CrashPlanAdversary applies a
  // plan in list order, so restore trigger order if that still fails.
  std::vector<Crash> sorted = crashes;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Crash& a,
                                                    const Crash& b) {
    return a.at_step < b.at_step;
  });
  if (sh.budget_left() && sh.fails(schedule, sorted)) {
    crashes = std::move(sorted);
  }
}

/// Phase 4: ddmin chunk removal (Zeller–Hildebrandt). Granularity starts
/// at 2 chunks and doubles whenever no chunk can be removed; any
/// successful removal restarts the scan at the same granularity.
void ddmin(Shrinker& sh, std::vector<ProcId>& schedule,
           const std::vector<Crash>& crashes) {
  std::size_t chunks = 2;
  while (schedule.size() >= 2 && chunks <= schedule.size() &&
         sh.budget_left()) {
    const std::size_t chunk_len =
        (schedule.size() + chunks - 1) / chunks;  // ceil
    bool removed = false;
    for (std::size_t start = 0; start < schedule.size() && sh.budget_left();
         start += chunk_len) {
      std::vector<ProcId> candidate;
      candidate.reserve(schedule.size());
      for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (i < start || i >= start + chunk_len) candidate.push_back(schedule[i]);
      }
      if (candidate.size() < schedule.size() && sh.fails(candidate, crashes)) {
        schedule = std::move(candidate);
        removed = true;
        break;  // rescan at the same granularity on the shorter schedule
      }
    }
    if (!removed) {
      if (chunks >= schedule.size()) break;  // singleton granularity done
      chunks = std::min(chunks * 2, schedule.size());
    } else {
      chunks = std::max<std::size_t>(2, std::min(chunks, schedule.size()));
    }
  }
}

}  // namespace

ShrinkOutcome shrink_failure(const TortureFailure& fail, int max_probes) {
  ShrinkOutcome out;
  out.failure = fail.failure;
  out.schedule = fail.schedule;
  out.crashes = fail.crashes;
  out.original_len = fail.schedule.size();

  Shrinker sh(fail.run, fail.failure, max_probes);

  // Phase 1: the recorded trace must reproduce its own failure. Watchdog
  // aborts (wall-clock) are inherently non-replayable; everything else in
  // the simulator is deterministic.
  if (fail.failure == FailureClass::kNone ||
      fail.reason == RunResult::Reason::kDeadline ||
      !sh.fails(fail.schedule, fail.crashes)) {
    out.probes = sh.probes();
    return out;
  }
  out.reproduced = true;

  truncate_prefix(sh, out.schedule, out.crashes);
  minimize_crashes(sh, out.schedule, out.crashes);
  ddmin(sh, out.schedule, out.crashes);
  // A shorter schedule may have made more crashes redundant.
  minimize_crashes(sh, out.schedule, out.crashes);

  out.probes = sh.probes();
  return out;
}

}  // namespace bprc::fault
