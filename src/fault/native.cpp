#include "fault/native.hpp"

#include <memory>
#include <utility>

#include "consensus/native_local_coin.hpp"
#include "registers/native/native_registers.hpp"
#include "registers/native/native_scannable.hpp"
#include "runtime/thread_runtime.hpp"
#include "util/assert.hpp"
#include "verify/weakmem/recorder.hpp"

namespace bprc {

namespace {

/// Common scaffolding: build a ThreadRuntime, optionally attach a
/// recorder, run `setup` to construct the shared objects and spawn
/// bodies, then join, drain, check, and persist.
struct Harness {
  explicit Harness(const NativeRunOptions& opts, const std::string& name)
      : opts_(opts), name_(name), rt_(opts.nprocs, opts.seed, opts.yield_prob) {
    if (opts.check_sc) {
      recorder_ = std::make_unique<weakmem::WeakMemRecorder>(opts.nprocs);
      recorder_->recording().case_name = name;
      rt_.set_mem_sink(recorder_.get());
    }
  }

  ThreadRuntime& rt() { return rt_; }

  /// Joins the run, runs `drain` (post-join store-buffer drains), then
  /// the checker, then writes the artifact if requested.
  template <class Drain>
  NativeOutcome finish(Drain&& drain) {
    NativeOutcome out;
    out.run = rt_.run(opts_.max_steps, opts_.deadline);
    drain();
    if (recorder_ != nullptr) {
      out.actions = recorder_->recording().total_actions();
      out.sc = weakmem::check_sc(recorder_->recording());
      out.checked = true;
      if (!out.sc.ok() && !opts_.artifact_path.empty()) {
        if (weakmem::save_recording(recorder_->recording(),
                                    opts_.artifact_path)) {
          out.artifact = opts_.artifact_path;
        }
      }
    }
    return out;
  }

  const NativeRunOptions& opts_;
  std::string name_;
  ThreadRuntime rt_;
  std::unique_ptr<weakmem::WeakMemRecorder> recorder_;
};

/// Body that runs body(i) for iters iterations (ProcessStopped unwinds
/// through it to the runtime's handler).
template <class Body>
std::function<void()> iterate(int iters, Body body) {
  return [iters, body] {
    for (int i = 0; i < iters; ++i) body(i);
  };
}

NativeOutcome run_swmr_collect(const NativeRunOptions& opts) {
  Harness h(opts, "swmr-collect");
  std::vector<std::unique_ptr<NativeSWMR>> regs;
  for (ProcId p = 0; p < opts.nprocs; ++p) {
    regs.push_back(std::make_unique<NativeSWMR>(
        h.rt(), p, ("swmr" + std::to_string(p)).c_str(), 0, p));
  }
  for (ProcId p = 0; p < opts.nprocs; ++p) {
    const int n = opts.nprocs;
    h.rt().spawn(p, iterate(opts.iters, [&regs, p, n](int i) {
      // Everyone is at once the single writer of its own register and a
      // reader of all others — the paper's V_i communication pattern.
      regs[static_cast<std::size_t>(p)]->write(
          static_cast<std::uint64_t>(i + 1));
      for (ProcId j = 0; j < n; ++j) {
        regs[static_cast<std::size_t>(j)]->read();
      }
    }));
  }
  return h.finish([&] {});
}

NativeOutcome run_counter_walk(const NativeRunOptions& opts) {
  Harness h(opts, "counter-walk");
  NativeBoundedCounter counter(h.rt(), /*bound=*/8, "ctr", 0);
  for (ProcId p = 0; p < opts.nprocs; ++p) {
    h.rt().spawn(p, iterate(opts.iters, [&counter, &rt = h.rt()](int) {
      // The paper's random-walk usage: ±1 steps, clamped at the bound,
      // interleaved with reads.
      counter.add(rt.rng().flip() ? 1 : -1);
      const std::int64_t v = counter.read();
      BPRC_REQUIRE(v >= -counter.bound() && v <= counter.bound(),
                   "counter escaped its bound");
    }));
  }
  return h.finish([&] {});
}

NativeOutcome run_strip_handoff(const NativeRunOptions& opts) {
  Harness h(opts, "strip-handoff");
  NativeStripCell cell(h.rt(), 0, "strip", 0);
  for (ProcId p = 0; p < opts.nprocs; ++p) {
    const auto symbol = static_cast<std::uint64_t>(p + 1);
    const auto alphabet = static_cast<std::uint64_t>(opts.nprocs + 1);
    h.rt().spawn(p, iterate(opts.iters, [&cell, symbol, alphabet](int) {
      cell.write(symbol);
      const std::uint64_t seen = cell.read();
      BPRC_REQUIRE(seen < alphabet, "strip symbol outside the alphabet");
    }));
  }
  return h.finish([&] {});
}

NativeOutcome run_scan_storm(const NativeRunOptions& opts) {
  Harness h(opts, "scan-storm");
  NativeScannableMemory mem(h.rt(), 0);
  for (ProcId p = 0; p < opts.nprocs; ++p) {
    h.rt().spawn(p, [&mem, p, iters = opts.iters] {
      std::vector<std::uint64_t> view;
      for (int i = 0; i < iters; ++i) {
        mem.write(static_cast<std::uint64_t>(i + 1));
        mem.scan_into(view);
        // The scanner's own slot must reflect its own latest write —
        // the snapshot property a stale collect would break.
        BPRC_REQUIRE(view[static_cast<std::size_t>(p)] ==
                         static_cast<std::uint64_t>(i + 1),
                     "scan lost the scanner's own write");
      }
    });
  }
  return h.finish([&] {});
}

NativeOutcome run_native_consensus(const NativeRunOptions& opts) {
  Harness h(opts, "consensus");
  NativeLocalCoinConsensus protocol(h.rt());
  std::vector<int> inputs(static_cast<std::size_t>(opts.nprocs));
  for (ProcId p = 0; p < opts.nprocs; ++p) {
    inputs[static_cast<std::size_t>(p)] = p % 2;  // split inputs: the
    // adversaryless thread schedule still has to reach agreement
    h.rt().spawn(p, [&protocol, input = inputs[static_cast<std::size_t>(p)]] {
      protocol.propose(input);
    });
  }
  NativeOutcome out = h.finish([&] {});
  const std::vector<bool> crashed(static_cast<std::size_t>(opts.nprocs), false);
  out.consensus =
      evaluate_consensus(protocol, inputs, h.rt(), out.run, crashed);
  out.graded_consensus = true;
  return out;
}

NativeOutcome run_broken_relaxed(const NativeRunOptions& opts) {
  // The store-buffering litmus (§docs/MEMORY_ORDERS.md): two threads,
  // two registers, W(x) R(y) ∥ W(y) R(x). The emulated store buffers
  // keep both writes invisible until after the join, so both reads see
  // the initial value on every host — a deterministic po ∪ fr cycle the
  // checker must reject.
  BPRC_REQUIRE(opts.nprocs >= 2, "broken-relaxed needs two processes");
  Harness h(opts, "broken-relaxed");
  BrokenRelaxedRegister x(h.rt(), "x", 0, 0);
  BrokenRelaxedRegister y(h.rt(), "y", 0, 1);
  h.rt().spawn(0, [&] {
    h.rt().rendezvous(2);
    x.write(1);
    (void)y.read();
  });
  h.rt().spawn(1, [&] {
    h.rt().rendezvous(2);
    y.write(1);
    (void)x.read();
  });
  return h.finish([&] {
    x.drain_all();
    y.drain_all();
  });
}

}  // namespace

const std::vector<NativeCaseSpec>& native_cases() {
  static const std::vector<NativeCaseSpec> cases = {
      {"swmr-collect", false,
       "n SWMR registers, every process writes its own and collects all"},
      {"counter-walk", false,
       "one bounded counter, random ±1 walks from every process"},
      {"strip-handoff", false,
       "one strip cell, CAS writes of per-process symbols"},
      {"scan-storm", false,
       "scannable memory, every process alternates write and scan"},
      {"consensus", false,
       "local-coin consensus on native scannable memory, split inputs"},
      {"broken-relaxed", true,
       "store-buffering litmus on the deliberately relaxed register"},
  };
  return cases;
}

const NativeCaseSpec* find_native_case(const std::string& name) {
  for (const NativeCaseSpec& spec : native_cases()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

NativeOutcome run_native_case(const std::string& name,
                              const NativeRunOptions& opts) {
  const NativeCaseSpec* spec = find_native_case(name);
  BPRC_REQUIRE(spec != nullptr, "unknown native case");
  if (name == "swmr-collect") return run_swmr_collect(opts);
  if (name == "counter-walk") return run_counter_walk(opts);
  if (name == "strip-handoff") return run_strip_handoff(opts);
  if (name == "scan-storm") return run_scan_storm(opts);
  if (name == "consensus") return run_native_consensus(opts);
  if (name == "broken-relaxed") return run_broken_relaxed(opts);
  BPRC_REQUIRE(false, "native case listed but not dispatched");
  return {};
}

}  // namespace bprc
