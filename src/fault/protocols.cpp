#include "fault/protocols.hpp"

#include <memory>

#include "consensus/abrahamson.hpp"
#include "consensus/aspnes_herlihy.hpp"
#include "consensus/bprc.hpp"
#include "consensus/strong_coin.hpp"
#include "fault/broken.hpp"
#include "util/assert.hpp"

namespace bprc::fault {

const std::vector<ProtocolSpec>& protocol_registry() {
  // The four faithful protocols all carry live_under_stale_reads=false:
  // their expected-termination proofs assume atomic registers, and the
  // weak-register campaign showed the assumption is load-bearing (see the
  // trait's comment in protocols.hpp). BPRC additionally carries
  // tolerates_safe_reads=false — safe-register junk trips its always-on
  // edge-counter decode invariant, which aborts rather than grades.
  static const std::vector<ProtocolSpec> registry = {
      {"bprc", false, true, /*live_under_stale_reads=*/false,
       /*tolerates_safe_reads=*/false,
       [](int n, std::uint64_t, const SpaceBudget& space) -> ProtocolFactory {
         return [n, space](Runtime& rt) {
           return std::make_unique<BPRCConsensus>(
               rt, BPRCParams::from_budget(n, space));
         };
       },
       /*space_sensitive=*/true},
      // space_sensitive via the barrier b only: AH's counters are
      // unbounded, so K/cycle/slots/mscale have nothing to act on.
      {"aspnes-herlihy", false, true, /*live_under_stale_reads=*/false, true,
       [](int n, std::uint64_t, const SpaceBudget& space) -> ProtocolFactory {
         return [n, space](Runtime& rt) {
           return std::make_unique<AspnesHerlihyConsensus>(
               rt, CoinParams::standard(n, space.b));
         };
       },
       /*space_sensitive=*/true},
      // crash_tolerant=false: this simplified A88 baseline omits the
      // paper's timestamp machinery and livelocks when crashed processes
      // freeze conflicting preferences (torture-campaign finding).
      {"local-coin", false, false, /*live_under_stale_reads=*/false, true,
       [](int, std::uint64_t, const SpaceBudget&) -> ProtocolFactory {
         return [](Runtime& rt) {
           return std::make_unique<LocalCoinConsensus>(rt);
         };
       }},
      {"strong-coin", false, true, /*live_under_stale_reads=*/false, true,
       [](int, std::uint64_t seed, const SpaceBudget&) -> ProtocolFactory {
         return [seed](Runtime& rt) {
           return std::make_unique<StrongCoinConsensus>(rt, seed ^ 0xC01);
         };
       }},
      {"broken-racy", true, true, true, true,
       [](int, std::uint64_t, const SpaceBudget&) -> ProtocolFactory {
         return [](Runtime& rt) { return std::make_unique<RacyConsensus>(rt); };
       }},
      // Bounded-memory violator: agreement-safe under unanimous inputs,
      // blows its declared counter bound only under (partially)
      // serialized schedules — the explorer's acceptance target for
      // catching schedule-dependent footprint bugs exhaustively.
      {"broken-unbounded", true, true, true, true,
       [](int, std::uint64_t, const SpaceBudget&) -> ProtocolFactory {
         return [](Runtime& rt) {
           return std::make_unique<UnboundedHandoffConsensus>(rt);
         };
       }},
      // The space lane's self-certification pair (docs/SPACE_BUDGETS.md):
      // the real protocol run at a deliberately short budget. Honest
      // logic, honest schedules — only the declared allowance is wrong,
      // so campaigns and the explorer must surface kBoundedMemory via
      // the demand latch, on exactly the schedules where the deficit is
      // actually exercised (a lockstep run never is). Traits mirror
      // `bprc`: the underlying protocol is unchanged.
      {"bprc-underprov-cycle", true, true, /*live_under_stale_reads=*/false,
       /*tolerates_safe_reads=*/false,
       [](int n, std::uint64_t, const SpaceBudget& space) -> ProtocolFactory {
         SpaceBudget s = space;
         s.cycle_mult = 2;  // 2K-cell cycle: |s| = K aliases with −K
         return [n, s](Runtime& rt) {
           return std::make_unique<BPRCConsensus>(
               rt, BPRCParams::from_budget(n, s));
         };
       },
       /*space_sensitive=*/true},
      {"bprc-underprov-slots", true, true, /*live_under_stale_reads=*/false,
       /*tolerates_safe_reads=*/false,
       [](int n, std::uint64_t, const SpaceBudget& space) -> ProtocolFactory {
         SpaceBudget s = space;
         s.slots = s.K;  // one short: no slack round for racing readers
         return [n, s](Runtime& rt) {
           return std::make_unique<BPRCConsensus>(
               rt, BPRCParams::from_budget(n, s));
         };
       },
       /*space_sensitive=*/true},
      // Correct over atomic registers, broken over regular/safe ones: the
      // weak-register tier's acceptance target (docs/REGISTER_SEMANTICS.md).
      // crash_tolerant=false: readers spin on process 0's announce flag.
      {"broken-needs-atomic", true, false, true, true,
       [](int, std::uint64_t, const SpaceBudget&) -> ProtocolFactory {
         return [](Runtime& rt) {
           return std::make_unique<NeedsAtomicConsensus>(rt);
         };
       }},
      // Host-killer (crashes_process=true): lethal for half the seeds,
      // where the first scheduled process segfaults the OS process
      // executing the trial. The shard coordinator must quarantine those
      // indices as kWorkerCrash and finish the campaign; everything
      // single-process dies, by design. crash_tolerant=false: the benign
      // path spins on all n slots, so starvation shows as budget aborts.
      {"broken-segv", true, false, true, true,
       [](int, std::uint64_t seed, const SpaceBudget&) -> ProtocolFactory {
         const bool lethal = (seed % 2) == 0;
         return [lethal](Runtime& rt) {
           return std::make_unique<WorkerKillerConsensus>(rt, lethal);
         };
       },
       /*space_sensitive=*/false,
       /*crashes_process=*/true},
  };
  return registry;
}

std::vector<std::string> protocol_names(bool include_broken) {
  std::vector<std::string> out;
  for (const ProtocolSpec& spec : protocol_registry()) {
    if (spec.broken && !include_broken) continue;
    if (spec.crashes_process) continue;  // explicit lookup only
    out.push_back(spec.name);
  }
  return out;
}

const ProtocolSpec& protocol_spec(const std::string& name) {
  for (const ProtocolSpec& spec : protocol_registry()) {
    if (spec.name == name) return spec;
  }
  BPRC_REQUIRE(false, "unknown protocol name");
  __builtin_unreachable();
}

ProtocolFactory make_protocol(const std::string& name, int n,
                              std::uint64_t seed) {
  return make_protocol(name, n, seed, SpaceBudget{});
}

ProtocolFactory make_protocol(const std::string& name, int n,
                              std::uint64_t seed, const SpaceBudget& space) {
  return protocol_spec(name).make(n, seed, space);
}

}  // namespace bprc::fault
