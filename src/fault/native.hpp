// The native-atomics torture lane: named workloads ("cases") that hammer
// the native register implementations on real OS threads, record every
// atomic primitive, and grade the execution with the offline SC checker
// (src/verify/weakmem/) — plus, for the consensus case, the same oracle
// that grades simulated runs (evaluate_consensus).
//
// Mirrors the protocol registry idiom of fault/protocols.hpp: a static
// table of specs with a `broken` flag. Broken cases are *expected* to be
// flagged by the checker; the native ctest tier runs them under
// WILL_FAIL, pinning the analysis's negative path the same way the
// exhaustive tier pins broken protocols.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "consensus/driver.hpp"
#include "verify/weakmem/sc_checker.hpp"

namespace bprc {

struct NativeCaseSpec {
  std::string name;
  bool broken = false;  ///< the SC checker must flag this case
  std::string description;
};

/// The static case table. Broken entries last.
const std::vector<NativeCaseSpec>& native_cases();

/// Spec by name; nullptr if unknown.
const NativeCaseSpec* find_native_case(const std::string& name);

struct NativeRunOptions {
  int nprocs = 4;
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 2'000'000;
  /// Per-thread high-level iterations for the register cases (the
  /// consensus case runs to decision instead).
  int iters = 200;
  double yield_prob = 0.05;
  std::chrono::nanoseconds deadline = std::chrono::seconds(30);
  /// Record native actions and run the SC checker. Off = the zero-cost
  /// path (null sink), which is what the checker-off bench measures.
  bool check_sc = true;
  /// Where to persist the recording as a replayable `.bprc-weakmem`
  /// artifact when the SC check fails (empty = never write). Replaying
  /// the artifact re-runs the offline analysis and reproduces the
  /// verdict bit for bit.
  std::string artifact_path;
};

struct NativeOutcome {
  RunResult run;
  weakmem::SCResult sc;        ///< meaningful iff `checked`
  bool checked = false;
  ConsensusRunResult consensus;///< meaningful iff `graded_consensus`
  bool graded_consensus = false;
  std::size_t actions = 0;     ///< recorded native atomic operations
  std::string artifact;        ///< artifact path actually written, if any

  /// The case behaved: run completed, SC check passed (when on), and the
  /// consensus oracle passed (when applicable).
  bool ok() const {
    if (run.reason != RunResult::Reason::kAllDone) return false;
    if (checked && !sc.ok()) return false;
    if (graded_consensus && !consensus.ok()) return false;
    return true;
  }
};

/// Runs one named case. BPRC_REQUIREs the name exists.
NativeOutcome run_native_case(const std::string& name,
                              const NativeRunOptions& opts);

}  // namespace bprc
