// Supervision policy of the shard coordinator, factored out as pure
// functions so tests can pin the partition math, the backoff curve, and
// the chaos-reaper schedule without forking anything.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace bprc::shard {

/// A contiguous half-open slice of the campaign's spec index space.
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Shard i of k over `total` indices: contiguous ranges, the first
/// (total % k) shards one index larger, so every index is covered exactly
/// once and |size(i) - size(j)| <= 1.
inline IndexRange shard_range(std::size_t i, std::size_t k,
                              std::size_t total) {
  const std::size_t base = total / k;
  const std::size_t extra = total % k;
  const std::size_t begin = i * base + std::min(i, extra);
  const std::size_t size = base + (i < extra ? 1 : 0);
  return IndexRange{begin, begin + size};
}

/// Capped exponential backoff before respawning a crashed worker:
/// attempt 1 waits `base`, each further attempt doubles, clamped to
/// `cap`. Attempt 0 (and negative) waits nothing — the first spawn is
/// not a retry.
inline std::chrono::milliseconds respawn_backoff(
    int attempt, std::chrono::milliseconds base,
    std::chrono::milliseconds cap) {
  if (attempt <= 0 || base.count() <= 0) {
    return std::chrono::milliseconds::zero();
  }
  std::chrono::milliseconds delay = base;
  for (int i = 1; i < attempt && delay < cap; ++i) delay *= 2;
  return std::min(delay, cap);
}

/// One scheduled chaos kill: once the coordinator has received
/// `after_delivered` records (across all workers), SIGKILL the worker in
/// `victim_slot` — or, if that one already finished, the next live
/// worker; events nobody can take are deferred to a later receipt.
struct ReapEvent {
  std::uint64_t after_delivered = 0;
  unsigned victim_slot = 0;
};

/// Seeded WorkerReaper schedule: `kills` SIGKILLs spread over the first
/// three quarters of the campaign's record receipts, thresholds strictly
/// increasing. Deterministic in (kills, workers, seed, total_runs); the
/// *timing* of each kill still depends on scheduling, but the merged
/// digest never does — a killed worker's range is re-executed and folds
/// identically.
inline std::vector<ReapEvent> reaper_schedule(std::uint64_t kills,
                                              unsigned workers,
                                              std::uint64_t seed,
                                              std::uint64_t total_runs) {
  std::vector<ReapEvent> plan;
  if (kills == 0 || workers == 0 || total_runs == 0) return plan;
  Rng rng(seed ^ 0x5EAFED5EAFED5EAFULL);
  const std::uint64_t span = std::max<std::uint64_t>(1, total_runs * 3 / 4);
  std::vector<std::uint64_t> thresholds;
  thresholds.reserve(kills);
  for (std::uint64_t i = 0; i < kills; ++i) {
    thresholds.push_back(rng.below(span));
  }
  std::sort(thresholds.begin(), thresholds.end());
  for (std::uint64_t i = 1; i < thresholds.size(); ++i) {
    // Strictly increasing so two kills never race for the same delivery.
    thresholds[i] = std::max(thresholds[i], thresholds[i - 1] + 1);
  }
  for (std::uint64_t i = 0; i < kills; ++i) {
    plan.push_back(ReapEvent{
        thresholds[i],
        static_cast<unsigned>(rng.below(workers))});
  }
  return plan;
}

}  // namespace bprc::shard
