// Wire format of the sharded campaign service.
//
// Two layers share one vocabulary:
//
//   * a length-prefixed *frame* protocol for the coordinator/worker pipes
//     (src/shard/coordinator.cpp forks workers and reads their streams):
//     1 type byte + u32le payload length + payload. A worker that is
//     SIGKILLed mid-write leaves at most one partial trailing frame,
//     which the FrameReader simply never completes — the coordinator
//     resumes the dead worker's range from the first index it has no
//     complete frame for;
//
//   * a line-oriented *record* text (the frame payloads, and the body of
//     `.bprc-shard` files written by `bprc_torture --shard i/k`): one
//     `outcome` line per executed spec index carrying the per-run digest
//     and classification, plus — for failures only — an embedded block
//     with the full recorded trace, so the merge side can shrink and
//     persist artifacts without re-executing anything.
//
// A shard never ships raw schedules for passing runs: the campaign
// digest is a chain of per-run digests (fault::outcome_digest), so 8
// bytes per run is enough for the merged summary_digest to come out
// byte-identical to a serial sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/campaign.hpp"

namespace bprc::shard {

enum class MsgType : std::uint8_t {
  kOutcome = 1,    ///< payload: one serialized record
  kHeartbeat = 2,  ///< empty payload; liveness proof while a trial runs
  kDone = 3,       ///< empty payload; the worker finished its range
};

struct Frame {
  MsgType type = MsgType::kHeartbeat;
  std::string payload;
};

/// Writes one frame with a retrying write loop (EINTR-safe). Returns
/// false on any other error (EPIPE foremost: the coordinator died).
/// Callers with multiple writing threads serialize calls themselves.
bool write_frame(int fd, MsgType type, const std::string& payload);

/// Incremental frame decoder over a pipe byte stream.
class FrameReader {
 public:
  void feed(const char* data, std::size_t len) { buf_.append(data, len); }

  /// Next complete frame, or nullopt if more bytes are needed. A partial
  /// trailing frame (worker killed mid-write) stays pending forever —
  /// exactly the "never delivered" semantics the resume logic wants.
  std::optional<Frame> next();

 private:
  std::string buf_;
};

/// One executed spec index, reduced to its fold unit.
using IndexedRecord = std::pair<std::size_t, fault::OutcomeRecord>;

/// Serializes (index, record) as the record text block.
std::string serialize_record(std::size_t index,
                             const fault::OutcomeRecord& record);

/// Parses a single record block (one frame payload). nullopt + err on
/// malformed input.
std::optional<IndexedRecord> parse_record(const std::string& text,
                                          std::string* err);

/// A `.bprc-shard` file: the records of one contiguous index range of a
/// campaign, plus enough header to refuse merging shards of different
/// campaigns.
struct ShardFile {
  std::uint64_t fingerprint = 0;   ///< fault::campaign_matrix_fingerprint
  std::uint64_t total_runs = 0;    ///< full matrix size (all shards)
  std::uint64_t max_failures = 0;  ///< fold early-stop threshold
  std::uint64_t skipped_crash_cells = 0;  ///< whole-matrix skip count
  /// Whole-matrix kSafe skip count (campaign.hpp). Serialized only when
  /// nonzero, so shard files from atomic-only campaigns — including
  /// every file written before the weak-register lane existed — keep
  /// their historical bytes.
  std::uint64_t skipped_safe_cells = 0;
  /// Whole-matrix space-insensitivity skip count (campaign.hpp). Same
  /// contract: serialized only when nonzero, so single-budget campaigns
  /// — every file written before the space lane existed — keep their
  /// historical bytes.
  std::uint64_t skipped_space_cells = 0;
  std::size_t begin = 0;           ///< executed index range [begin, end)
  std::size_t end = 0;
  std::vector<IndexedRecord> records;  ///< ascending, covering [begin, end)
};

std::string serialize_shard_file(const ShardFile& shard);
std::optional<ShardFile> parse_shard_file(const std::string& text,
                                          std::string* err);

/// File wrappers; save returns false on I/O failure.
bool save_shard_file(const std::string& path, const ShardFile& shard);
std::optional<ShardFile> load_shard_file(const std::string& path,
                                         std::string* err);

}  // namespace bprc::shard
