// Coordinator of the fault-tolerant sharded campaign service.
//
// run_sharded_campaign() splits a campaign's deterministic spec index
// range over fork()ed worker processes, reads their record streams off
// pipes (shard/wire.hpp), and folds records strictly in index order —
// so the merged CampaignReport, its summary_digest above all, is
// byte-identical to a serial `run_campaign` of the same config.
//
// The robustness contract (the reason this exists):
//
//   * crash detection — a worker that exits, segfaults, or is SIGKILLed
//     surfaces as EOF on its pipe; a worker whose process wedges stops
//     heartbeating and is SIGKILLed by the liveness watchdog; a worker
//     that heartbeats but makes no trial progress trips the stall
//     watchdog (armed only when the campaign has a run_deadline: the
//     per-trial watchdog bounds honest trial time, so 4x that without a
//     record means a hard-hung trial loop);
//   * resume — the dead worker's completed prefix is whatever complete
//     frames arrived (a partial trailing frame is discarded); a fresh
//     worker is forked over the remaining range after capped
//     exponential backoff, and determinism makes re-executed records
//     identical, so nothing is lost and nothing double-folds;
//   * quarantine — when the same spec index kills its worker more than
//     `max_respawns` times, that single trial is written off as a
//     FailureClass::kWorkerCrash finding (digest contribution
//     fault::quarantined_digest(), detail carrying the TortureRun for a
//     generative .bprc-repro artifact) and the campaign completes
//     degraded instead of dying with it;
//   * chaos — the WorkerReaper (reaper_kills > 0) SIGKILLs workers
//     mid-shard on a seeded schedule; reaper kills are the
//     coordinator's own doing and are never charged against a spec
//     index's respawn budget, so chaos can slow a campaign but never
//     quarantine a healthy trial;
//   * interruption — when campaign.stop_requested() fires, workers get
//     SIGTERM, are reaped, and the report flushes everything folded so
//     far with `interrupted` set.
//
// run_shard()/merge_shard_files() are the offline halves of the same
// machine: `bprc_torture --shard i/k` executes one range in-process and
// writes a ShardFile; `--merge` re-folds any full set of shard files
// into the identical report.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "shard/wire.hpp"

namespace bprc::shard {

struct ShardServiceConfig {
  fault::CampaignConfig campaign;
  unsigned workers = 2;
  /// Deaths the same spec index may cause before it is quarantined.
  int max_respawns = 2;
  /// Respawn backoff curve (supervise.hpp): base, doubling, capped.
  std::chrono::milliseconds backoff_base{25};
  std::chrono::milliseconds backoff_cap{500};
  /// Worker heartbeat cadence, and how long a silent worker lives.
  std::chrono::milliseconds heartbeat_interval{100};
  std::chrono::milliseconds heartbeat_timeout{5000};
  /// No-progress watchdog: a worker heartbeating but delivering no
  /// record for this long is killed (and charged). 0 derives
  /// 4 * campaign.run_deadline + 1s, or disables it when the campaign
  /// runs without a per-trial watchdog.
  std::chrono::milliseconds stall_timeout{0};
  /// WorkerReaper chaos harness: SIGKILL this many workers mid-shard on
  /// a schedule seeded by reaper_seed (supervise.hpp). Never affects the
  /// merged digest.
  std::uint64_t reaper_kills = 0;
  std::uint64_t reaper_seed = 0x5EED;
  /// Supervision event log (respawns, quarantines, reaper kills);
  /// nullable.
  std::function<void(const std::string&)> log;
};

/// Runs the campaign across forked workers; see the file comment for the
/// supervision contract. The returned report is byte-identical to the
/// serial run whenever no trial kills its worker.
fault::CampaignReport run_sharded_campaign(const ShardServiceConfig& config);

/// Executes shard `shard_index` of `shard_count` in-process and returns
/// its ShardFile. Honors campaign.stop_requested by truncating: the
/// returned range end is the first unexecuted index, so a partial shard
/// is still a valid (merge-refusing) file instead of a corrupt one.
ShardFile run_shard(const fault::CampaignConfig& campaign,
                    std::size_t shard_index, std::size_t shard_count);

struct MergeResult {
  bool ok = false;     ///< shards were consistent and covered the matrix
  std::string error;   ///< why not, when !ok
  fault::CampaignReport report;
};

/// Re-folds a full set of shards (any order; must tile [0, total_runs)
/// exactly and agree on the campaign fingerprint) into the report a
/// serial run would have produced.
MergeResult merge_shard_files(const std::vector<ShardFile>& shards);

}  // namespace bprc::shard
