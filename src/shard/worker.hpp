// Worker side of the sharded campaign service: executes one contiguous
// index range of an enumerated campaign matrix and emits an
// OutcomeRecord per index, in index order.
//
// Two callers share the range loop:
//   * run_shard / `bprc_torture --shard i/k` collects records in-process
//     into a ShardFile;
//   * the coordinator's forked children stream them as kOutcome frames
//     over a pipe, with a heartbeat thread proving liveness while a
//     long trial runs (worker_process_main).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <vector>

#include "fault/campaign.hpp"
#include "shard/supervise.hpp"

namespace bprc::shard {

/// Delivered per executed index; return false to stop early.
using RecordSink =
    std::function<bool(std::size_t, fault::OutcomeRecord&&)>;

/// Executes `runs[range.begin, range.end)` at the given TrialExecutor
/// jobs level (forked workers pass 1 — they parallelize by process, not
/// by thread; standalone `--shard` passes the campaign's own jobs) and
/// hands each reduced record to `sink` in index order. Consumes the
/// executed entries of `runs` (failure details move the run in). At most
/// `max_detailed_failures` records keep their TortureFailure detail;
/// later failures still count and chain, they just can't be shrunk — the
/// campaign fold stops after that many failures anyway, so nothing
/// downstream ever needs them.
void execute_index_range(const fault::CampaignConfig& campaign,
                         std::vector<fault::TortureRun>& runs,
                         IndexRange range, std::size_t max_detailed_failures,
                         unsigned jobs, const RecordSink& sink);

/// Forked worker main. Streams the range as kOutcome frames on `fd`,
/// interleaved with kHeartbeat frames every `heartbeat_interval` from a
/// companion thread (one mutex serializes the two writers), then a kDone
/// frame. Never returns: _exit(0) on completion, _exit(1) if the
/// coordinator is gone (write failure). Resets SIGINT/SIGTERM to their
/// defaults — the parent's cooperative handlers must not keep a child
/// alive — and ignores SIGPIPE so a dead coordinator surfaces as a
/// write error, not a signal death the supervisor would misread as a
/// trial crash.
[[noreturn]] void worker_process_main(
    int fd, const fault::CampaignConfig& campaign,
    std::vector<fault::TortureRun>& runs, IndexRange range,
    std::chrono::milliseconds heartbeat_interval);

}  // namespace bprc::shard
