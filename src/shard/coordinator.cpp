#include "shard/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <map>
#include <thread>

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "shard/supervise.hpp"
#include "shard/worker.hpp"
#include "util/assert.hpp"

namespace bprc::shard {
namespace {

using Clock = std::chrono::steady_clock;

/// Coordinator-side state of one worker slot. The slot's partition range
/// is fixed; the process occupying it changes across respawns.
struct Slot {
  unsigned id = 0;
  IndexRange range;
  /// First index no complete frame has arrived for — where a respawned
  /// worker resumes.
  std::size_t next_expected = 0;
  pid_t pid = -1;
  int fd = -1;
  FrameReader reader;
  Clock::time_point last_frame;    ///< any frame (liveness)
  Clock::time_point last_outcome;  ///< outcome frames only (progress)
  bool done = false;           ///< every record of the range arrived
  bool done_frame = false;     ///< the worker announced completion
  bool reaper_pending = false; ///< our own chaos kill is in flight
  int attempts = 0;            ///< deaths charged to next_expected
};

fault::OutcomeRecord quarantine_record(const fault::TortureRun& run) {
  fault::OutcomeRecord rec;
  rec.digest = fault::quarantined_digest();
  rec.steps = 0;
  rec.reason = RunResult::Reason::kAllDone;
  rec.failure = FailureClass::kWorkerCrash;
  fault::TortureFailure f;
  f.run = run;
  f.failure = FailureClass::kWorkerCrash;
  f.reason = RunResult::Reason::kAllDone;
  rec.detail = std::move(f);
  return rec;
}

class Coordinator {
 public:
  Coordinator(const ShardServiceConfig& config,
              std::vector<fault::TortureRun>&& runs,
              std::uint64_t skipped_crash_cells,
              std::uint64_t skipped_safe_cells,
              std::uint64_t skipped_space_cells)
      : config_(config), runs_(std::move(runs)) {
    report_.skipped_crash_cells = skipped_crash_cells;
    report_.skipped_safe_cells = skipped_safe_cells;
    report_.skipped_space_cells = skipped_space_cells;
    stall_timeout_ = config.stall_timeout;
    if (stall_timeout_.count() == 0 &&
        config.campaign.run_deadline.count() > 0) {
      stall_timeout_ = 4 * config.campaign.run_deadline +
                       std::chrono::milliseconds(1000);
    }
  }

  fault::CampaignReport run() {
    const std::size_t total = runs_.size();
    if (total == 0) return report_;
    const std::size_t k =
        std::min<std::size_t>(config_.workers, total);
    reap_plan_ = reaper_schedule(config_.reaper_kills,
                                 static_cast<unsigned>(k),
                                 config_.reaper_seed, total);
    slots_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      Slot& slot = slots_[i];
      slot.id = static_cast<unsigned>(i);
      slot.range = shard_range(i, k, total);
      slot.next_expected = slot.range.begin;
      if (slot.range.empty()) {
        slot.done = true;
      } else {
        spawn(slot);
      }
    }
    fire_due_reaps();  // a threshold of 0 kills before any delivery

    while (fold_next_ < total) {
      if (config_.campaign.stop_requested &&
          config_.campaign.stop_requested()) {
        report_.interrupted = true;
        shutdown(SIGTERM);
        return report_;
      }
      poll_workers();
      if (!fold_ready()) {  // early stop: max_failures reached
        shutdown(SIGTERM);
        return report_;
      }
      check_watchdogs();
    }
    // All records folded; collect the survivors' kDone/EOF.
    shutdown(SIGTERM);
    return report_;
  }

 private:
  void logf(const std::string& msg) {
    if (config_.log) config_.log(msg);
  }

  void spawn(Slot& slot) {
    int fds[2];
    BPRC_REQUIRE(::pipe(fds) == 0, "pipe() failed");
    const pid_t pid = ::fork();
    BPRC_REQUIRE(pid >= 0, "fork() failed");
    if (pid == 0) {
      // Child: drop every coordinator-side read end (its own pipe's and
      // the sibling slots') so worker EOFs stay crisp, then run.
      ::close(fds[0]);
      for (const Slot& other : slots_) {
        if (other.fd >= 0) ::close(other.fd);
      }
      worker_process_main(fds[1], config_.campaign, runs_,
                          IndexRange{slot.next_expected, slot.range.end},
                          config_.heartbeat_interval);
    }
    ::close(fds[1]);
    slot.pid = pid;
    slot.fd = fds[0];
    slot.reader = FrameReader();  // a dead predecessor's partial frame dies
    slot.last_frame = slot.last_outcome = Clock::now();
    slot.done_frame = false;
  }

  void reap(Slot& slot) {
    if (slot.fd >= 0) {
      ::close(slot.fd);
      slot.fd = -1;
    }
    if (slot.pid > 0) {
      int status = 0;
      while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
      }
      slot.pid = -1;
    }
  }

  /// Terminates and reaps every live worker (normal completion, early
  /// stop, and interruption all funnel through here).
  void shutdown(int sig) {
    for (Slot& slot : slots_) {
      if (slot.pid > 0) ::kill(slot.pid, sig);
    }
    for (Slot& slot : slots_) reap(slot);
  }

  void poll_workers() {
    std::vector<pollfd> fds;
    std::vector<Slot*> owners;
    for (Slot& slot : slots_) {
      if (slot.fd >= 0) {
        fds.push_back(pollfd{slot.fd, POLLIN, 0});
        owners.push_back(&slot);
      }
    }
    if (fds.empty()) {
      // Nothing readable but records missing: only possible transiently
      // (a death handled below respawns synchronously), so just yield.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return;
    }
    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/20);
    if (rc < 0) {
      BPRC_REQUIRE(errno == EINTR, "poll() failed");
      return;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      drain(*owners[i]);
    }
  }

  void drain(Slot& slot) {
    char buf[65536];
    const ssize_t n = ::read(slot.fd, buf, sizeof buf);
    if (n < 0) {
      BPRC_REQUIRE(errno == EINTR, "read() from worker pipe failed");
      return;
    }
    if (n == 0) {
      on_death(slot);
      return;
    }
    slot.reader.feed(buf, static_cast<std::size_t>(n));
    const Clock::time_point now = Clock::now();
    slot.last_frame = now;
    while (std::optional<Frame> frame = slot.reader.next()) {
      switch (frame->type) {
        case MsgType::kHeartbeat:
          break;
        case MsgType::kDone:
          slot.done_frame = true;
          break;
        case MsgType::kOutcome: {
          std::string err;
          std::optional<IndexedRecord> rec = parse_record(frame->payload, &err);
          BPRC_REQUIRE(rec.has_value(), "worker sent a malformed record");
          BPRC_REQUIRE(rec->first == slot.next_expected,
                       "worker delivered records out of order");
          slot.last_outcome = now;
          slot.attempts = 0;  // progress clears the respawn charge
          pending_.emplace(rec->first, std::move(rec->second));
          ++slot.next_expected;
          ++received_;
          // Chaos triggers key off *receipt*, not fold position: the
          // fold trails in index order, so a fold-based trigger would
          // mostly kill workers that already finished.
          fire_due_reaps();
          break;
        }
      }
    }
    if (slot.next_expected >= slot.range.end && !slot.done) {
      slot.done = true;  // all records in; EOF is mere cleanup now
    }
  }

  void on_death(Slot& slot) {
    reap(slot);
    if (slot.done || slot.done_frame ||
        slot.next_expected >= slot.range.end) {
      slot.done = true;
      return;
    }
    const std::size_t idx = slot.next_expected;
    if (slot.reaper_pending) {
      // Chaos kill: our own doing, never charged. Resume immediately.
      slot.reaper_pending = false;
      logf("worker " + std::to_string(slot.id) +
           " reaped by chaos schedule; respawning at index " +
           std::to_string(idx));
      spawn(slot);
      return;
    }
    ++slot.attempts;
    if (slot.attempts > config_.max_respawns) {
      logf("index " + std::to_string(idx) + " killed worker " +
           std::to_string(slot.id) + " " + std::to_string(slot.attempts) +
           " times; quarantining as " +
           to_string(FailureClass::kWorkerCrash));
      pending_.emplace(idx, quarantine_record(runs_[idx]));
      ++slot.next_expected;
      ++received_;
      slot.attempts = 0;
      if (slot.next_expected >= slot.range.end) {
        slot.done = true;
        return;
      }
      spawn(slot);
      return;
    }
    const std::chrono::milliseconds delay = respawn_backoff(
        slot.attempts, config_.backoff_base, config_.backoff_cap);
    logf("worker " + std::to_string(slot.id) + " died at index " +
         std::to_string(idx) + " (attempt " + std::to_string(slot.attempts) +
         "/" + std::to_string(config_.max_respawns + 1) + "); respawning in " +
         std::to_string(delay.count()) + "ms");
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    spawn(slot);
  }

  /// Folds the contiguous pending prefix. Returns false on max_failures
  /// early stop — the same deterministic prefix a serial run stops at.
  bool fold_ready() {
    auto it = pending_.find(fold_next_);
    while (it != pending_.end()) {
      if (!fold_outcome_record(report_, std::move(it->second),
                               config_.campaign.max_failures)) {
        pending_.erase(it);
        return false;
      }
      pending_.erase(it);
      ++fold_next_;
      it = pending_.find(fold_next_);
    }
    return true;
  }

  void fire_due_reaps() {
    while (next_reap_ < reap_plan_.size() &&
           received_ >= reap_plan_[next_reap_].after_delivered) {
      const ReapEvent& ev = reap_plan_[next_reap_];
      // The scheduled victim may have finished already (fast shards
      // outrun the fold); re-target the next live worker so the kill
      // still lands whenever anyone is genuinely mid-shard. If nobody
      // can take the kill right now (every unfinished worker is already
      // dying), defer the event instead of dropping it — it fires at a
      // later fold, e.g. on the respawned worker. Events that never find
      // a victim expire with the campaign: nothing was left to disrupt.
      const std::size_t k = slots_.size();
      Slot* victim = nullptr;
      for (std::size_t off = 0; off < k && victim == nullptr; ++off) {
        Slot& s = slots_[(ev.victim_slot + off) % k];
        if (s.pid > 0 && !s.done && !s.done_frame && !s.reaper_pending) {
          victim = &s;
        }
      }
      if (victim == nullptr) return;  // defer; retry on the next fold
      ++next_reap_;
      logf("reaper: SIGKILL worker " + std::to_string(victim->id) +
           " after " + std::to_string(received_) + " records received");
      victim->reaper_pending = true;
      ::kill(victim->pid, SIGKILL);
    }
  }

  void check_watchdogs() {
    const Clock::time_point now = Clock::now();
    for (Slot& slot : slots_) {
      if (slot.pid <= 0 || slot.done || slot.done_frame) continue;
      const bool silent =
          now - slot.last_frame > config_.heartbeat_timeout;
      const bool stalled =
          stall_timeout_.count() > 0 &&
          now - slot.last_outcome > stall_timeout_;
      if (!silent && !stalled) continue;
      logf("worker " + std::to_string(slot.id) +
           (silent ? " stopped heartbeating" : " made no trial progress") +
           "; killing");
      // Charged like any crash: a trial that wedges its worker should
      // burn through the respawn budget and quarantine.
      ::kill(slot.pid, SIGKILL);
      // The EOF arrives on the next poll and on_death takes over.
    }
  }

  const ShardServiceConfig& config_;
  std::vector<fault::TortureRun> runs_;
  fault::CampaignReport report_;
  std::vector<Slot> slots_;
  /// Records waiting for their index's turn in the fold, keyed by index.
  std::map<std::size_t, fault::OutcomeRecord> pending_;
  std::size_t fold_next_ = 0;
  /// Records received (frames parsed + quarantines), across all slots —
  /// the chaos reaper's clock. Distinct from fold_next_: receipt tracks
  /// wall progress, the fold trails in index order.
  std::uint64_t received_ = 0;
  std::vector<ReapEvent> reap_plan_;
  std::size_t next_reap_ = 0;
  std::chrono::milliseconds stall_timeout_{0};
};

}  // namespace

fault::CampaignReport run_sharded_campaign(const ShardServiceConfig& config) {
  BPRC_REQUIRE(config.workers >= 1, "need at least one worker");
  BPRC_REQUIRE(config.max_respawns >= 0, "max_respawns must be >= 0");
  std::uint64_t skipped = 0;
  std::uint64_t skipped_safe = 0;
  std::uint64_t skipped_space = 0;
  std::vector<fault::TortureRun> runs = fault::enumerate_campaign_runs(
      config.campaign, &skipped, &skipped_safe, &skipped_space);
  Coordinator coordinator(config, std::move(runs), skipped, skipped_safe,
                          skipped_space);
  return coordinator.run();
}

ShardFile run_shard(const fault::CampaignConfig& campaign,
                    std::size_t shard_index, std::size_t shard_count) {
  BPRC_REQUIRE(shard_count >= 1 && shard_index < shard_count,
               "shard index out of range");
  std::uint64_t skipped = 0;
  std::uint64_t skipped_safe = 0;
  std::uint64_t skipped_space = 0;
  std::vector<fault::TortureRun> runs = fault::enumerate_campaign_runs(
      campaign, &skipped, &skipped_safe, &skipped_space);
  ShardFile shard;
  shard.fingerprint = fault::campaign_matrix_fingerprint(campaign, runs);
  shard.total_runs = runs.size();
  shard.max_failures = campaign.max_failures;
  shard.skipped_crash_cells = skipped;
  shard.skipped_safe_cells = skipped_safe;
  shard.skipped_space_cells = skipped_space;
  const IndexRange range = shard_range(shard_index, shard_count, runs.size());
  shard.begin = range.begin;
  shard.end = range.end;
  execute_index_range(
      campaign, runs, range, campaign.max_failures, campaign.jobs,
      [&](std::size_t index, fault::OutcomeRecord&& record) {
        if (campaign.stop_requested && campaign.stop_requested()) {
          shard.end = index;  // truncate: still a valid file
          return false;
        }
        shard.records.emplace_back(index, std::move(record));
        return true;
      });
  return shard;
}

MergeResult merge_shard_files(const std::vector<ShardFile>& shards) {
  MergeResult result;
  if (shards.empty()) {
    result.error = "no shard files to merge";
    return result;
  }
  std::vector<const ShardFile*> order;
  order.reserve(shards.size());
  for (const ShardFile& s : shards) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const ShardFile* a, const ShardFile* b) {
              return a->begin < b->begin;
            });
  const ShardFile& first = *order.front();
  for (const ShardFile* s : order) {
    if (s->fingerprint != first.fingerprint ||
        s->total_runs != first.total_runs ||
        s->max_failures != first.max_failures ||
        s->skipped_crash_cells != first.skipped_crash_cells ||
        s->skipped_safe_cells != first.skipped_safe_cells ||
        s->skipped_space_cells != first.skipped_space_cells) {
      result.error = "shards come from different campaigns";
      return result;
    }
  }
  std::size_t expect = 0;
  for (const ShardFile* s : order) {
    if (s->begin != expect) {
      result.error = "shards do not tile the index range: expected a shard "
                     "starting at " +
                     std::to_string(expect) + ", got " +
                     std::to_string(s->begin);
      return result;
    }
    expect = s->end;
  }
  if (expect != first.total_runs) {
    result.error = "shards cover only [0, " + std::to_string(expect) +
                   ") of " + std::to_string(first.total_runs) + " runs";
    return result;
  }
  result.report.skipped_crash_cells = first.skipped_crash_cells;
  result.report.skipped_safe_cells = first.skipped_safe_cells;
  result.report.skipped_space_cells = first.skipped_space_cells;
  bool stopped = false;
  for (const ShardFile* s : order) {
    if (stopped) break;
    for (const IndexedRecord& rec : s->records) {
      fault::OutcomeRecord copy = rec.second;
      if (!fold_outcome_record(result.report, std::move(copy),
                               first.max_failures)) {
        stopped = true;  // max_failures: same stop point as a serial run
        break;
      }
    }
  }
  result.ok = true;
  return result;
}

}  // namespace bprc::shard
