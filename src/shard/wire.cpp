#include "shard/wire.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/assert.hpp"

namespace bprc::shard {
namespace {

constexpr std::size_t kHeaderBytes = 5;  // 1 type byte + u32le length

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t wrote = ::write(fd, data, len);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(wrote);
    len -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool reason_from_string(const std::string& name, RunResult::Reason* out) {
  for (const RunResult::Reason r :
       {RunResult::Reason::kAllDone, RunResult::Reason::kBudget,
        RunResult::Reason::kNoRunnable, RunResult::Reason::kDeadline}) {
    if (name == to_string(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

bool class_from_string(const std::string& name, FailureClass* out) {
  // failure_class_from_string maps unknown names to kNone; distinguish a
  // genuine "none" from garbage by round-tripping.
  const FailureClass f = failure_class_from_string(name);
  if (f == FailureClass::kNone && name != to_string(FailureClass::kNone)) {
    return false;
  }
  *out = f;
  return true;
}

void set_err(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
}

/// Line-level parse state shared by parse_record and parse_shard_file.
struct LineParser {
  std::istringstream in;
  std::string line;

  explicit LineParser(const std::string& text) : in(text) {}

  bool next_line() { return static_cast<bool>(std::getline(in, line)); }

  /// True when `line` parsed fully as `key` + the fields the caller
  /// consumed; callers check fields themselves via this stream.
  std::istringstream fields_after(const std::string& key) {
    std::istringstream fields(line);
    std::string k;
    fields >> k;
    BPRC_REQUIRE(k == key, "wire parse state confusion");
    return fields;
  }
};

bool trailing_garbage(std::istringstream& fields) {
  std::string extra;
  return static_cast<bool>(fields >> extra);
}

void emit_vec_line(std::ostringstream& out, const char* key,
                   const std::vector<int>& v) {
  out << key;
  for (const int x : v) out << ' ' << x;
  out << '\n';
}

// ---- failure block -------------------------------------------------------

void serialize_failure(std::ostringstream& out, const fault::TortureFailure& f) {
  out << "failure-begin\n";
  out << "protocol " << f.run.protocol << '\n';
  emit_vec_line(out, "inputs", f.run.inputs);
  out << "adversary " << f.run.adversary << '\n';
  for (const auto& c : f.run.crash_plan) {
    out << "plan-crash " << c.at_step << ' ' << c.victim << '\n';
  }
  out << "seed " << f.run.seed << '\n';
  out << "max-steps " << f.run.max_steps << '\n';
  // Unlike the user-facing repro format, the wire peers are always the
  // same binary, so the semantics line is unconditional (simpler parse).
  out << "semantics " << to_string(f.run.semantics) << '\n';
  // The space line stays conditional even on the wire: failure blocks
  // are embedded in `.bprc-shard` FILES, whose historical bytes the
  // fixture tests pin, and the canonical budget text round-trips through
  // SpaceBudget::parse either way.
  if (!f.run.space.is_default()) {
    out << "space " << f.run.space.to_string() << '\n';
  }
  out << "fail-class " << to_string(f.failure) << '\n';
  out << "fail-reason " << to_string(f.reason) << '\n';
  out << "schedule";
  for (const ProcId p : f.schedule) out << ' ' << p;
  out << '\n';
  if (!f.stales.empty()) emit_vec_line(out, "stales", f.stales);
  for (const auto& c : f.crashes) {
    out << "crash " << c.at_step << ' ' << c.victim << '\n';
  }
  const ConsensusRunResult& r = f.result;
  out << "res-flags " << r.all_decided << ' ' << r.consistent << ' '
      << r.valid << ' ' << r.bounded_ok << '\n';
  emit_vec_line(out, "res-decisions", r.decisions);
  out << "res-rounds";
  for (const std::int64_t x : r.decision_rounds) out << ' ' << x;
  out << '\n';
  out << "res-steps " << r.total_steps << ' ' << r.max_proc_steps << '\n';
  out << "res-max-round " << r.max_round << '\n';
  out << "res-footprint " << r.footprint.bounded << ' '
      << r.footprint.max_round_stored << ' ' << r.footprint.max_counter << ' '
      << r.footprint.coin_locations << ' ' << r.footprint.static_bound << '\n';
  out << "res-reason " << to_string(r.reason) << '\n';
  out << "failure-end\n";
}

/// Parses the lines after a `failure-begin` up to `failure-end`. The wire
/// peers are the same binary, so unknown keys are an error, not a skip.
bool parse_failure(LineParser& p, fault::TortureFailure* f, std::string* err) {
  while (p.next_line()) {
    std::istringstream fields(p.line);
    std::string key;
    if (!(fields >> key)) continue;  // blank line
    if (key == "failure-end") return true;
    bool bad = false;
    if (key == "protocol") {
      bad = !(fields >> f->run.protocol) || trailing_garbage(fields);
    } else if (key == "inputs") {
      int x = 0;
      while (fields >> x) f->run.inputs.push_back(x);
      bad = fields.fail() && !fields.eof();
    } else if (key == "adversary") {
      bad = !(fields >> f->run.adversary) || trailing_garbage(fields);
    } else if (key == "plan-crash") {
      CrashPlanAdversary::Crash c{};
      bad = !(fields >> c.at_step >> c.victim) || trailing_garbage(fields);
      if (!bad) f->run.crash_plan.push_back(c);
    } else if (key == "seed") {
      bad = !(fields >> f->run.seed) || trailing_garbage(fields);
    } else if (key == "max-steps") {
      bad = !(fields >> f->run.max_steps) || trailing_garbage(fields);
    } else if (key == "semantics") {
      std::string name;
      bad = !(fields >> name) || trailing_garbage(fields) ||
            !register_semantics_from_string(name, &f->run.semantics);
    } else if (key == "space") {
      std::string rest;
      std::getline(fields, rest);
      std::string why;
      const auto parsed = SpaceBudget::parse(rest, &why);
      bad = !parsed.has_value();
      if (!bad) f->run.space = *parsed;
    } else if (key == "stales") {
      int x = 0;
      while (fields >> x) f->stales.push_back(x);
      bad = fields.fail() && !fields.eof();
    } else if (key == "fail-class") {
      std::string name;
      bad = !(fields >> name) || trailing_garbage(fields) ||
            !class_from_string(name, &f->failure);
    } else if (key == "fail-reason") {
      std::string name;
      bad = !(fields >> name) || trailing_garbage(fields) ||
            !reason_from_string(name, &f->reason);
    } else if (key == "schedule") {
      ProcId x = 0;
      while (fields >> x) f->schedule.push_back(x);
      bad = fields.fail() && !fields.eof();
    } else if (key == "crash") {
      CrashPlanAdversary::Crash c{};
      bad = !(fields >> c.at_step >> c.victim) || trailing_garbage(fields);
      if (!bad) f->crashes.push_back(c);
    } else if (key == "res-flags") {
      ConsensusRunResult& r = f->result;
      bad = !(fields >> r.all_decided >> r.consistent >> r.valid >>
              r.bounded_ok) ||
            trailing_garbage(fields);
    } else if (key == "res-decisions") {
      int x = 0;
      while (fields >> x) f->result.decisions.push_back(x);
      bad = fields.fail() && !fields.eof();
    } else if (key == "res-rounds") {
      std::int64_t x = 0;
      while (fields >> x) f->result.decision_rounds.push_back(x);
      bad = fields.fail() && !fields.eof();
    } else if (key == "res-steps") {
      bad = !(fields >> f->result.total_steps >> f->result.max_proc_steps) ||
            trailing_garbage(fields);
    } else if (key == "res-max-round") {
      bad = !(fields >> f->result.max_round) || trailing_garbage(fields);
    } else if (key == "res-footprint") {
      MemoryFootprint& fp = f->result.footprint;
      bad = !(fields >> fp.bounded >> fp.max_round_stored >> fp.max_counter >>
              fp.coin_locations >> fp.static_bound) ||
            trailing_garbage(fields);
    } else if (key == "res-reason") {
      std::string name;
      bad = !(fields >> name) || trailing_garbage(fields) ||
            !reason_from_string(name, &f->result.reason);
    } else {
      set_err(err, "unknown key in failure block: " + key);
      return false;
    }
    if (bad) {
      set_err(err, "malformed failure line: " + p.line);
      return false;
    }
  }
  set_err(err, "failure block not terminated (missing failure-end)");
  return false;
}

/// Parses one `outcome ...` line (already in p.line); if a failure block
/// follows, consumes it too.
bool parse_record_at(LineParser& p, IndexedRecord* out, std::string* err) {
  std::istringstream fields = p.fields_after("outcome");
  fault::OutcomeRecord rec;
  std::size_t index = 0;
  std::string reason_name;
  std::string class_name;
  if (!(fields >> index >> rec.digest >> rec.steps >> reason_name >>
        class_name) ||
      trailing_garbage(fields) ||
      !reason_from_string(reason_name, &rec.reason) ||
      !class_from_string(class_name, &rec.failure)) {
    set_err(err, "malformed outcome line: " + p.line);
    return false;
  }
  // Peek: does a failure block follow? (Only ever directly after its
  // outcome line.)
  const std::streampos before = p.in.tellg();
  if (p.next_line()) {
    if (p.line == "failure-begin") {
      fault::TortureFailure f;
      if (!parse_failure(p, &f, err)) return false;
      rec.detail = std::move(f);
    } else {
      // Not ours; rewind so the caller sees this line again.
      p.in.clear();
      p.in.seekg(before);
    }
  } else {
    p.in.clear();  // EOF right after the outcome line is fine
  }
  *out = {index, std::move(rec)};
  return true;
}

}  // namespace

bool write_frame(int fd, MsgType type, const std::string& payload) {
  BPRC_REQUIRE(payload.size() <= 0xFFFFFFFFu, "frame payload too large");
  char header[kHeaderBytes];
  header[0] = static_cast<char>(type);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  header[1] = static_cast<char>(len & 0xFF);
  header[2] = static_cast<char>((len >> 8) & 0xFF);
  header[3] = static_cast<char>((len >> 16) & 0xFF);
  header[4] = static_cast<char>((len >> 24) & 0xFF);
  // Two write calls: the frame need not be atomic on the pipe because
  // each fd has exactly one reader buffering into a FrameReader, and
  // writers on the same fd hold a mutex around the whole call.
  if (!write_all(fd, header, kHeaderBytes)) return false;
  return write_all(fd, payload.data(), payload.size());
}

std::optional<Frame> FrameReader::next() {
  if (buf_.size() < kHeaderBytes) return std::nullopt;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[i]));
  };
  const std::uint32_t len = b(1) | (b(2) << 8) | (b(3) << 16) | (b(4) << 24);
  if (buf_.size() < kHeaderBytes + len) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MsgType>(b(0));
  frame.payload = buf_.substr(kHeaderBytes, len);
  buf_.erase(0, kHeaderBytes + len);
  return frame;
}

std::string serialize_record(std::size_t index,
                             const fault::OutcomeRecord& record) {
  std::ostringstream out;
  out << "outcome " << index << ' ' << record.digest << ' ' << record.steps
      << ' ' << to_string(record.reason) << ' ' << to_string(record.failure)
      << '\n';
  if (record.detail.has_value()) serialize_failure(out, *record.detail);
  return out.str();
}

std::optional<IndexedRecord> parse_record(const std::string& text,
                                          std::string* err) {
  LineParser p(text);
  if (!p.next_line() || p.line.rfind("outcome ", 0) != 0) {
    set_err(err, "record does not start with an outcome line");
    return std::nullopt;
  }
  IndexedRecord rec;
  if (!parse_record_at(p, &rec, err)) return std::nullopt;
  // Anything after the record is garbage.
  while (p.next_line()) {
    if (!p.line.empty()) {
      set_err(err, "trailing data after record: " + p.line);
      return std::nullopt;
    }
  }
  return rec;
}

std::string serialize_shard_file(const ShardFile& shard) {
  std::ostringstream out;
  out << "bprc-shard v1\n";
  out << "fingerprint " << shard.fingerprint << '\n';
  out << "total-runs " << shard.total_runs << '\n';
  out << "max-failures " << shard.max_failures << '\n';
  out << "skipped-crash-cells " << shard.skipped_crash_cells << '\n';
  if (shard.skipped_safe_cells != 0) {
    // Optional line (weak-register campaigns only): omitted when zero so
    // atomic-only shard files keep their historical bytes.
    out << "skipped-safe-cells " << shard.skipped_safe_cells << '\n';
  }
  if (shard.skipped_space_cells != 0) {
    // Optional line (multi-budget campaigns only): same byte-stability
    // contract as skipped-safe-cells.
    out << "skipped-space-cells " << shard.skipped_space_cells << '\n';
  }
  out << "range " << shard.begin << ' ' << shard.end << '\n';
  for (const IndexedRecord& rec : shard.records) {
    out << serialize_record(rec.first, rec.second);
  }
  out << "end\n";
  return out.str();
}

std::optional<ShardFile> parse_shard_file(const std::string& text,
                                          std::string* err) {
  LineParser p(text);
  ShardFile shard;
  if (!p.next_line() || p.line != "bprc-shard v1") {
    set_err(err, "not a bprc-shard v1 file");
    return std::nullopt;
  }
  // Fixed header order — this is machine output, not hand-written.
  const auto header_u64 = [&](const char* key, std::uint64_t* out) {
    if (!p.next_line()) return false;
    std::istringstream fields(p.line);
    std::string k;
    return static_cast<bool>(fields >> k) && k == key &&
           static_cast<bool>(fields >> *out) && !trailing_garbage(fields);
  };
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  bool ok = header_u64("fingerprint", &shard.fingerprint) &&
            header_u64("total-runs", &shard.total_runs) &&
            header_u64("max-failures", &shard.max_failures) &&
            header_u64("skipped-crash-cells", &shard.skipped_crash_cells);
  if (ok) {
    ok = p.next_line();
    // Optional weak-register line between the fixed header and the range
    // (written only by campaigns that skipped kSafe cells).
    if (ok && p.line.rfind("skipped-safe-cells", 0) == 0) {
      std::istringstream fields(p.line);
      std::string k;
      ok = static_cast<bool>(fields >> k >> shard.skipped_safe_cells) &&
           !trailing_garbage(fields);
      if (ok) ok = p.next_line();
    }
    // Optional space-lane line, in the same slot (written only by
    // campaigns that skipped space-insensitive cells).
    if (ok && p.line.rfind("skipped-space-cells", 0) == 0) {
      std::istringstream fields(p.line);
      std::string k;
      ok = static_cast<bool>(fields >> k >> shard.skipped_space_cells) &&
           !trailing_garbage(fields);
      if (ok) ok = p.next_line();
    }
    if (ok) {
      std::istringstream fields(p.line);
      std::string k;
      ok = static_cast<bool>(fields >> k) && k == "range" &&
           static_cast<bool>(fields >> begin >> end) &&
           !trailing_garbage(fields) && begin <= end &&
           end <= shard.total_runs;
    }
  }
  if (!ok) {
    set_err(err, "malformed shard header at: " + p.line);
    return std::nullopt;
  }
  shard.begin = static_cast<std::size_t>(begin);
  shard.end = static_cast<std::size_t>(end);

  bool terminated = false;
  std::size_t expect = shard.begin;
  while (p.next_line()) {
    if (p.line.empty()) continue;
    if (p.line == "end") {
      terminated = true;
      break;
    }
    if (p.line.rfind("outcome ", 0) != 0) {
      set_err(err, "expected an outcome line, got: " + p.line);
      return std::nullopt;
    }
    IndexedRecord rec;
    if (!parse_record_at(p, &rec, err)) return std::nullopt;
    if (rec.first != expect) {
      set_err(err, "record index " + std::to_string(rec.first) +
                       " out of order (expected " + std::to_string(expect) +
                       ")");
      return std::nullopt;
    }
    ++expect;
    shard.records.push_back(std::move(rec));
  }
  if (!terminated) {
    set_err(err, "shard file truncated (missing end marker)");
    return std::nullopt;
  }
  if (expect != shard.end) {
    set_err(err, "shard covers [" + std::to_string(shard.begin) + ", " +
                     std::to_string(shard.end) + ") but has records up to " +
                     std::to_string(expect));
    return std::nullopt;
  }
  return shard;
}

bool save_shard_file(const std::string& path, const ShardFile& shard) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << serialize_shard_file(shard);
  return static_cast<bool>(out.flush());
}

std::optional<ShardFile> load_shard_file(const std::string& path,
                                         std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_err(err, "cannot open shard file: " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_shard_file(text.str(), err);
}

}  // namespace bprc::shard
