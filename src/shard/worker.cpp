#include "shard/worker.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <csignal>
#include <unistd.h>

#include "engine/executor.hpp"
#include "shard/wire.hpp"

namespace bprc::shard {

void execute_index_range(const fault::CampaignConfig& campaign,
                         std::vector<fault::TortureRun>& runs,
                         IndexRange range, std::size_t max_detailed_failures,
                         unsigned jobs, const RecordSink& sink) {
  const std::chrono::nanoseconds deadline = campaign.run_deadline;
  std::size_t detailed = 0;
  engine::TrialExecutor executor({jobs, /*window=*/0});
  executor.run_trials_range(
      [&](std::size_t i) {
        return fault::to_trial_spec(runs[i], deadline, /*record=*/true);
      },
      range.begin, range.end,
      [&](std::size_t index, const engine::TrialSpec&,
          engine::TrialOutcome&& out) {
        fault::OutcomeRecord record = fault::make_outcome_record(
            std::move(runs[index]), std::move(out));
        if (record.detail.has_value()) {
          if (detailed >= max_detailed_failures) {
            record.detail.reset();
          } else {
            ++detailed;
          }
        }
        return sink(index, std::move(record));
      });
}

void worker_process_main(int fd, const fault::CampaignConfig& campaign,
                         std::vector<fault::TortureRun>& runs,
                         IndexRange range,
                         std::chrono::milliseconds heartbeat_interval) {
  // The parent's cooperative SIGINT/SIGTERM handlers only set a flag this
  // process never polls; restore the defaults so signals terminate the
  // worker and the coordinator sees a normal EOF.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  // A dead coordinator must surface as write_frame() == false, not as a
  // SIGPIPE death the next supervisor generation would grade as a crash.
  std::signal(SIGPIPE, SIG_IGN);

  std::mutex write_mutex;  // serializes outcome and heartbeat frames
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::atomic<bool> coordinator_gone{false};

  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lk(hb_mutex);
    for (;;) {
      hb_cv.wait_for(lk, heartbeat_interval, [&] { return hb_stop; });
      if (hb_stop) return;
      std::lock_guard<std::mutex> wl(write_mutex);
      if (!write_frame(fd, MsgType::kHeartbeat, "")) {
        coordinator_gone.store(true);
        return;
      }
    }
  });

  bool ok = true;
  // jobs=1: the exact serial trial loop. Worker-level parallelism comes
  // from running several of these processes side by side.
  execute_index_range(
      campaign, runs, range, campaign.max_failures, /*jobs=*/1,
      [&](std::size_t index, fault::OutcomeRecord&& record) {
        if (coordinator_gone.load()) {
          ok = false;
          return false;
        }
        const std::string payload = serialize_record(index, record);
        std::lock_guard<std::mutex> wl(write_mutex);
        if (!write_frame(fd, MsgType::kOutcome, payload)) {
          ok = false;
          return false;
        }
        return true;
      });

  {
    std::lock_guard<std::mutex> lk(hb_mutex);
    hb_stop = true;
  }
  hb_cv.notify_all();
  heartbeat.join();

  if (ok) {
    std::lock_guard<std::mutex> wl(write_mutex);
    ok = write_frame(fd, MsgType::kDone, "");
  }
  ::close(fd);
  // _exit, not exit: a forked child must not run the parent's atexit
  // hooks or flush its inherited stdio buffers twice.
  ::_exit(ok ? 0 : 1);
}

}  // namespace bprc::shard
