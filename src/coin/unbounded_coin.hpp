// Unbounded-counter weak shared coin — the Aspnes–Herlihy comparator.
//
// Identical random walk, but counters are unbounded (no overflow rule):
// this is the coin of [AH88], whose per-round counter registers grow
// without bound. Two uses:
//   * experiment E6 measures its counter high-water marks against the
//     bounded coin's hard ±(m+1) ceiling;
//   * experiment E4 uses it as the oracle arm when quantifying how often
//     the bounded coin's overflow rule changes an outcome.
#pragma once

#include <atomic>
#include <cstdint>

#include "coin/coin_logic.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "util/assert.hpp"

namespace bprc {

class UnboundedCoin {
 public:
  /// Only `params.b` and `params.n` are used; `params.m` is ignored
  /// (conceptually infinite).
  UnboundedCoin(Runtime& rt, CoinParams params)
      : rt_(rt), params_(params), counters_(rt, std::int64_t{0}) {
    BPRC_REQUIRE(params.n == rt.nprocs(),
                 "coin params sized for a different process count");
  }

  CoinValue toss() {
    const ProcId me = rt_.self();
    std::int64_t own = 0;
    const std::int64_t barrier =
        static_cast<std::int64_t>(params_.b) * params_.n;
    while (true) {
      std::vector<std::int64_t> view = counters_.scan();
      view[static_cast<std::size_t>(me)] = own;
      std::int64_t walk = 0;
      for (const std::int64_t c : view) walk += c;
      if (walk > barrier) return CoinValue::kHeads;
      if (walk < -barrier) return CoinValue::kTails;
      const bool flip = rt_.rng().flip();
      Hint hint;
      hint.walk_delta = flip ? 1 : -1;
      hint.counter = own;
      rt_.publish_hint(hint);
      own += flip ? 1 : -1;
      counters_.write(own, /*payload=*/flip ? 1 : -1);
      hint.walk_delta = 0;
      hint.counter = own;
      rt_.publish_hint(hint);
      walk_steps_.fetch_add(1, std::memory_order_relaxed);
      track_magnitude(own);
    }
  }

  std::uint64_t walk_steps() const {
    return walk_steps_.load(std::memory_order_relaxed);
  }

  /// The unbounded quantity: largest |counter| ever written.
  std::int64_t max_counter_magnitude() const {
    return max_magnitude_.load(std::memory_order_relaxed);
  }

 private:
  void track_magnitude(std::int64_t c) {
    const std::int64_t mag = c < 0 ? -c : c;
    std::int64_t cur = max_magnitude_.load(std::memory_order_relaxed);
    while (cur < mag && !max_magnitude_.compare_exchange_weak(
                            cur, mag, std::memory_order_relaxed)) {
    }
  }

  Runtime& rt_;
  CoinParams params_;
  ScannableMemory<std::int64_t> counters_;
  std::atomic<std::uint64_t> walk_steps_{0};
  std::atomic<std::int64_t> max_magnitude_{0};
};

}  // namespace bprc
