// Standalone bounded weak shared coin (Section 3).
//
// n processes each call toss() once; every toss returns heads or tails in
// finite expected time (Lemma 3.2: O((b+1)²·n²) walk steps), and with
// probability ≥ (b-1)/2b per side *all* processes return the same value,
// even against an adversary that sees each local flip before allowing the
// counter write (Lemma 3.1). The counters live in a scannable memory so
// each coin_value evaluation uses a consistent snapshot, as the paper
// requires of the random walk.
//
// This standalone object backs the coin experiments (E2–E4); the consensus
// protocol embeds the identical logic per round through the coin slots of
// Section 5.
#pragma once

#include <atomic>
#include <cstdint>

#include "coin/coin_logic.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "util/assert.hpp"

namespace bprc {

class SharedCoin {
 public:
  SharedCoin(Runtime& rt, CoinParams params)
      : rt_(rt), params_(params), counters_(rt, std::int64_t{0}) {
    BPRC_REQUIRE(params.n == rt.nprocs(),
                 "coin params sized for a different process count");
  }

  /// Executes the full per-process coin protocol: alternate snapshot scans
  /// of the counters with local-flip walk steps until rule 1–3 of
  /// coin_value fires. Never returns kUndecided.
  CoinValue toss() {
    const ProcId me = rt_.self();
    std::int64_t own = 0;
    while (true) {
      std::vector<std::int64_t> view = counters_.scan();
      view[static_cast<std::size_t>(me)] = own;  // own slot is local truth
      const CoinValue v = coin_value(view, me, params_);
      if (v != CoinValue::kUndecided) {
        if (own < -params_.m || own > params_.m) {
          overflows_.fetch_add(1, std::memory_order_relaxed);
        }
        return v;
      }
      const bool flip = rt_.rng().flip();
      // Publish the flip outcome before the write: the strong adversary
      // has seen the local coin and may now delay this process.
      Hint hint;
      hint.walk_delta = flip ? 1 : -1;
      hint.counter = own;
      rt_.publish_hint(hint);
      own = walk_step(own, flip, params_);
      counters_.write(own, /*payload=*/flip ? 1 : -1);
      hint.walk_delta = 0;
      hint.counter = own;
      rt_.publish_hint(hint);
      walk_steps_.fetch_add(1, std::memory_order_relaxed);
      track_magnitude(own);
    }
  }

  const CoinParams& params() const { return params_; }

  /// Total counter increments across all processes (the step unit of
  /// Lemma 3.2).
  std::uint64_t walk_steps() const {
    return walk_steps_.load(std::memory_order_relaxed);
  }

  /// How many tosses ended through the deterministic overflow rule
  /// (the rare event of Lemmas 3.3/3.4).
  std::uint64_t overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }

  /// Largest |counter| any process ever wrote — must stay ≤ m+1 by
  /// construction (asserted by tests).
  std::int64_t max_counter_magnitude() const {
    return max_magnitude_.load(std::memory_order_relaxed);
  }

 private:
  void track_magnitude(std::int64_t c) {
    const std::int64_t mag = c < 0 ? -c : c;
    std::int64_t cur = max_magnitude_.load(std::memory_order_relaxed);
    while (cur < mag && !max_magnitude_.compare_exchange_weak(
                            cur, mag, std::memory_order_relaxed)) {
    }
  }

  Runtime& rt_;
  CoinParams params_;
  ScannableMemory<std::int64_t> counters_;
  std::atomic<std::uint64_t> walk_steps_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::int64_t> max_magnitude_{0};
};

}  // namespace bprc
