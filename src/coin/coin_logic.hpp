// Core decision logic of the bounded weak shared coin (Section 3).
//
// The coin is a collective random walk: each process owns a bounded
// counter c_i ∈ {-(m+1)..(m+1)}; the walk value is Σ c_i as seen in a
// snapshot view. A process reads the coin as
//
//   1. heads      if its OWN counter left {-m..m}   (the overflow rule)
//   2. heads      if walk_value >  b·n
//   3. tails      if walk_value < -b·n
//   4. undecided  otherwise.
//
// Rule 1 is what bounds the space: instead of unbounded counters
// (Aspnes–Herlihy), a process whose counter overflows deterministically
// answers heads. Lemmas 3.3/3.4: for m = (f(b)·n)² the adversary can
// force an overflow only with probability O(b·n/√m), which is absorbed
// into the coin's built-in disagreement probability (Lemma 3.1: ≤ 1/b,
// i.e. each outcome is unanimous with probability ≥ (b-1)/2b).
//
// These are pure functions over a snapshot view so the standalone coin
// (shared_coin.hpp) and the consensus protocol's per-round coins
// (consensus/bprc.cpp, via the coin slots of Section 5) share one
// implementation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace bprc {

struct CoinParams {
  int n = 0;           ///< number of processes
  int b = 4;           ///< decision threshold multiple (barrier at ±b·n)
  std::int64_t m = 0;  ///< own-counter bound; overflow at |c_i| > m

  /// Paper defaults: m = (f(b)·n)² with f(b) = m_scale·(b+1) chosen so
  /// the overflow probability is far below the coin's inherent 1/b
  /// disagreement (Lemma 3.4 gives overflow ≲ C·b·n/√m = C/(4(b+1)) at
  /// the paper's m_scale = 4). Smaller m_scale shrinks the counters —
  /// trading overflow noise (time) for register width (space); the
  /// frontier bench sweeps exactly this knob.
  static CoinParams standard(int n, int b = 4, int m_scale = 4) {
    BPRC_REQUIRE(n >= 1 && b >= 2, "coin needs n >= 1 and b >= 2");
    BPRC_REQUIRE(m_scale >= 1, "coin needs m_scale >= 1");
    const auto side =
        static_cast<std::int64_t>(m_scale) * (b + 1) * n;
    return CoinParams{n, b, side * side};
  }
};

enum class CoinValue : std::uint8_t { kHeads, kTails, kUndecided };

inline const char* to_string(CoinValue v) {
  switch (v) {
    case CoinValue::kHeads:
      return "heads";
    case CoinValue::kTails:
      return "tails";
    case CoinValue::kUndecided:
      return "undecided";
  }
  return "?";
}

/// §3 `function coin_value`, evaluated by process `self` over a snapshot
/// view of all counters. `counters[self]` must be the caller's own
/// counter value.
inline CoinValue coin_value(const std::vector<std::int64_t>& counters,
                            int self, const CoinParams& p) {
  BPRC_REQUIRE(static_cast<int>(counters.size()) == p.n,
               "coin view width must equal n");
  BPRC_REQUIRE(self >= 0 && self < p.n, "coin reader id out of range");
  // 1: own-counter overflow → deterministic heads.
  const std::int64_t own = counters[static_cast<std::size_t>(self)];
  if (own < -p.m || own > p.m) return CoinValue::kHeads;
  std::int64_t walk = 0;
  for (const std::int64_t c : counters) walk += c;
  const std::int64_t barrier = static_cast<std::int64_t>(p.b) * p.n;
  if (walk > barrier) return CoinValue::kHeads;   // 2
  if (walk < -barrier) return CoinValue::kTails;  // 3
  return CoinValue::kUndecided;                   // 4
}

/// §3 `procedure walk_step`: the counter update implied by one local coin
/// flip. The counter saturates at ±(m+1) — one past the overflow bound,
/// which is all the state rule 1 ever inspects, so deeper excursions need
/// not be representable (this is what keeps the register field bounded).
inline std::int64_t walk_step(std::int64_t counter, bool flip_heads,
                              const CoinParams& p) {
  const std::int64_t next = counter + (flip_heads ? 1 : -1);
  const std::int64_t cap = p.m + 1;
  if (next > cap) return cap;
  if (next < -cap) return -cap;
  return next;
}

}  // namespace bprc
