// bprc_bench — machine-readable simulator performance baseline.
//
// Runs the simulator microbenchmarks (bench/perf_harness.hpp) and emits
// BENCH_sim.json so every PR has a recorded perf trajectory to compare
// against. See docs/PERFORMANCE.md for the schema and the procedure for
// recording a new baseline.
//
//   bprc_bench                       full measurement, JSON to stdout
//   bprc_bench --smoke               tiny trial counts (CI artifact mode)
//   bprc_bench --out BENCH_sim.json  write/merge into a baseline file
//   bprc_bench --label post-opt      label for this measurement set
//
// Merging: entries already in --out whose label differs from the current
// --label are preserved verbatim; entries with the same label are
// replaced. That is how one file carries pre- and post-optimization
// numbers from the same machine. The file is line-oriented JSON (one
// entry object per line) so the merge never needs a full JSON parser.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/native.hpp"
#include "fault/protocols.hpp"
#include "perf_harness.hpp"

namespace {

using namespace bprc;
using namespace bprc::bench;

struct Entry {
  std::string benchmark;
  std::string metric;
  double value = 0.0;
  std::string unit;
  int n = 0;
  std::uint64_t seed_count = 0;
  std::string git_sha;
  std::string label;
};

struct Options {
  bool smoke = false;
  std::string out_path;
  std::string label = "baseline";
  std::uint64_t trials_override = 0;  ///< 0 = mode default
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bprc_bench [options]\n"
               "  --smoke         tiny trial counts (CI artifact mode)\n"
               "  --out FILE      write/merge JSON baseline (default: stdout)\n"
               "  --label NAME    measurement-set label (default: baseline)\n"
               "  --trials K      override per-cell trial count\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "bprc_bench: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--smoke") opt.smoke = true;
    else if (arg == "--out") { if (!(v = need_value(i))) return false; opt.out_path = v; }
    else if (arg == "--label") { if (!(v = need_value(i))) return false; opt.label = v; }
    else if (arg == "--trials") { if (!(v = need_value(i))) return false; opt.trials_override = std::strtoull(v, nullptr, 10); }
    else if (arg == "--help" || arg == "-h") { usage(stdout); std::exit(0); }
    else {
      std::fprintf(stderr, "bprc_bench: unknown option %s\n", arg.c_str());
      usage(stderr);
      return false;
    }
  }
  return true;
}

/// Current commit, for provenance. BPRC_GIT_SHA overrides (CI detached
/// heads); falls back to asking git, then to "unknown".
std::string current_git_sha() {
  if (const char* env = std::getenv("BPRC_GIT_SHA"); env != nullptr && *env) {
    return env;
  }
  std::string sha;
  if (std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      sha = buf;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    pclose(pipe);
  }
  return sha.empty() ? "unknown" : sha;
}

std::string format_entry(const Entry& e) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"benchmark\": \"%s\", \"metric\": \"%s\", "
                "\"value\": %.4f, \"unit\": \"%s\", \"n\": %d, "
                "\"seed_count\": %llu, \"git_sha\": \"%s\", "
                "\"label\": \"%s\"}",
                e.benchmark.c_str(), e.metric.c_str(), e.value,
                e.unit.c_str(), e.n,
                static_cast<unsigned long long>(e.seed_count),
                e.git_sha.c_str(), e.label.c_str());
  return buf;
}

/// Extracts `"key": "value"` from a line-oriented entry; empty on miss.
std::string extract_string_field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t from = at + needle.size();
  const std::size_t end = line.find('"', from);
  if (end == std::string::npos) return {};
  return line.substr(from, end - from);
}

/// Entry lines from an existing baseline whose label differs from
/// `drop_label` (those are preserved across a re-measurement).
std::vector<std::string> keep_foreign_entries(const std::string& path,
                                              const std::string& drop_label) {
  std::vector<std::string> kept;
  std::ifstream in(path);
  if (!in) return kept;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"benchmark\"") == std::string::npos) continue;
    if (extract_string_field(line, "label") == drop_label) continue;
    // Normalize away the trailing comma; rejoined on output.
    while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
      line.pop_back();
    }
    kept.push_back(line);
  }
  return kept;
}

std::string render_file(const std::vector<std::string>& lines) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"bprc-bench-v1\",\n"
      << "  \"generated_by\": \"tools/bprc_bench\",\n"
      << "  \"entries\": [\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

int run(const Options& opt) {
  const std::string sha = current_git_sha();
  std::vector<Entry> entries;
  auto add = [&](std::string benchmark, std::string metric, double value,
                 std::string unit, int n, std::uint64_t seed_count) {
    entries.push_back({std::move(benchmark), std::move(metric), value,
                       std::move(unit), n, seed_count, sha, opt.label});
  };

  const std::uint64_t ctx_rounds = opt.smoke ? 200'000 : 2'000'000;
  std::fprintf(stderr, "bprc_bench: fiber context switch (%llu rounds)...\n",
               static_cast<unsigned long long>(ctx_rounds));
  add("fiber_ctx_switch", "ns/switch", measure_ctx_switch_ns(ctx_rounds),
      "ns", 1, 0);

  for (const int n : {2, 4, 8}) {
    std::uint64_t trials = opt.smoke ? 32 / static_cast<std::uint64_t>(n)
                                     : 4096 / static_cast<std::uint64_t>(n);
    if (opt.trials_override != 0) trials = opt.trials_override;
    std::fprintf(stderr, "bprc_bench: BPRC n=%d random sweep (%llu trials)...\n",
                 n, static_cast<unsigned long long>(trials));
    const SweepPerf perf = measure_bprc_sweep(n, trials);
    const std::string suffix = "_bprc_n" + std::to_string(n) + "_random";
    add("sim_step" + suffix, "ns/step", perf.ns_per_step, "ns", n, trials);
    add("sim_runs" + suffix, "runs/sec", perf.runs_per_sec, "runs/s", n,
        trials);
    std::fprintf(stderr, "  %.1f ns/step, %.0f runs/sec (%llu steps)\n",
                 perf.ns_per_step, perf.runs_per_sec,
                 static_cast<unsigned long long>(perf.total_steps));
  }

  // Trial-engine scaling: the same n=8 sweep through engine::TrialExecutor
  // at jobs=1 and jobs=hardware. Outcomes are byte-identical at both
  // levels; the ratio of these two entries is the engine's speedup on
  // this machine (the acceptance gate wants >= 3x on a 4+-core runner).
  {
    const int n = 8;
    std::uint64_t trials = opt.smoke ? 32 : 512;
    if (opt.trials_override != 0) trials = opt.trials_override;
    // bench_jobs() honors BPRC_JOBS, so a CI runner can pin the wide jobs
    // level; on a single-core machine the wide lane still runs its own
    // measurement at jobs=2 — the two entries are always independent
    // samples (the old code recorded one SweepPerf twice when
    // default_jobs() was 1, which showed up as byte-identical jobs1 /
    // jobsmax values in BENCH_sim.json).
    const unsigned max_jobs = std::max(2u, bench_jobs());
    std::fprintf(stderr,
                 "bprc_bench: campaign throughput n=%d (%llu trials, "
                 "jobs=1 vs jobs=%u)...\n",
                 n, static_cast<unsigned long long>(trials), max_jobs);
    const SweepPerf serial = measure_campaign_throughput(n, trials, 1);
    add("campaign_throughput_n8", "runs/sec@jobs1", serial.runs_per_sec,
        "runs/s", n, trials);
    const SweepPerf wide = measure_campaign_throughput(n, trials, max_jobs);
    add("campaign_throughput_n8", "runs/sec@jobsmax", wide.runs_per_sec,
        "runs/s", n, trials);
    std::fprintf(stderr,
                 "  jobs=1: %.0f runs/sec; jobs=%u: %.0f runs/sec "
                 "(%.2fx)\n",
                 serial.runs_per_sec, max_jobs, wide.runs_per_sec,
                 serial.runs_per_sec > 0.0
                     ? wide.runs_per_sec / serial.runs_per_sec
                     : 0.0);

    // Process-sharding lane: the same cell as a campaign across 2 forked
    // workers (src/shard/). Compared against its own serial-campaign
    // baseline, the delta is the crash-isolation tax: fork + wire +
    // supervision.
    std::fprintf(stderr,
                 "bprc_bench: sharded campaign n=%d (%llu trials, "
                 "workers=1 vs workers=2)...\n",
                 n, static_cast<unsigned long long>(trials));
    const SweepPerf campaign1 = measure_sharded_throughput(n, trials, 1);
    add("campaign_throughput_n8", "runs/sec@workers1", campaign1.runs_per_sec,
        "runs/s", n, campaign1.trials);
    const SweepPerf sharded = measure_sharded_throughput(n, trials, 2);
    add("campaign_throughput_n8", "runs/sec@workers2", sharded.runs_per_sec,
        "runs/s", n, sharded.trials);
    std::fprintf(stderr,
                 "  workers=1: %.0f runs/sec; workers=2: %.0f runs/sec "
                 "(%.2fx)\n",
                 campaign1.runs_per_sec, sharded.runs_per_sec,
                 campaign1.runs_per_sec > 0.0
                     ? sharded.runs_per_sec / campaign1.runs_per_sec
                     : 0.0);
  }

  // Explorer deep-scale: one bprc n=3 input cell swept exhaustively by
  // the bounded model checker, serial grading vs the engine-batched leaf
  // pipeline. The digest is byte-identical at every jobs level (asserted
  // here), so the two entries differ only in wall clock — their ratio is
  // the explorer's scaling number on this machine.
  {
    const std::uint64_t depth = opt.smoke ? 10 : 14;
    const unsigned max_jobs = std::max(2u, bench_jobs());
    std::fprintf(stderr,
                 "bprc_bench: explore throughput n=3 (depth=%llu, "
                 "jobs=1 vs jobs=%u)...\n",
                 static_cast<unsigned long long>(depth), max_jobs);
    const ExplorePerf eserial = measure_explore_throughput(1, depth);
    add("explore_states_per_sec", "states/sec@jobs1", eserial.states_per_sec,
        "states/s", 3, eserial.executions);
    const ExplorePerf ewide = measure_explore_throughput(max_jobs, depth);
    BPRC_REQUIRE(ewide.digest == eserial.digest,
                 "explore digest must not depend on the jobs level");
    add("explore_states_per_sec", "states/sec@jobsmax", ewide.states_per_sec,
        "states/s", 3, ewide.executions);
    std::fprintf(stderr,
                 "  jobs=1: %.0f states/sec; jobs=%u: %.0f states/sec "
                 "(%.2fx, digest %016llx)\n",
                 eserial.states_per_sec, max_jobs, ewide.states_per_sec,
                 eserial.states_per_sec > 0.0
                     ? ewide.states_per_sec / eserial.states_per_sec
                     : 0.0,
                 static_cast<unsigned long long>(eserial.digest));
  }

  // Space–time frontier: the full faithful registry swept at several
  // space budgets (docs/SPACE_BUDGETS.md). Time is mean simulated steps
  // per run; space — recorded for `bprc` only, the one protocol whose
  // registers the budget actually bounds — is the budgeted
  // shared-register bits per process, so the two entries of one
  // (protocol, budget) pair form a frontier point. The baselines chart
  // the rest of the region: aspnes-herlihy tracks bprc step-for-step
  // (same skeleton, unbounded registers — bounding space costs no time),
  // local-coin/strong-coin ignore every knob but stay on the sweep as
  // flat controls. Every budget is measured at jobs=1, re-measured at
  // jobs=max, and pushed through 2 forked workers; all three digests
  // must match — the same independence contract as the campaign lane,
  // now along the space axis.
  {
    const int n = 3;
    std::uint64_t trials = opt.smoke ? 24 : 256;
    if (opt.trials_override != 0) trials = opt.trials_override;
    const unsigned max_jobs = std::max(2u, bench_jobs());
    struct BudgetPoint {
      const char* tag;
      SpaceBudget space;
    };
    std::vector<BudgetPoint> points;
    points.push_back({"paper", SpaceBudget{}});
    {
      SpaceBudget lean;  // smallest coin: fewer counter bits, noisier walk
      lean.b = 2;
      lean.m_scale = 1;
      points.push_back({"lean", lean});
    }
    {
      SpaceBudget mid;  // paper barrier, quarter-size counters
      mid.m_scale = 1;
      points.push_back({"mid", mid});
    }
    {
      SpaceBudget wide;  // higher barrier and full-size counters
      wide.b = 8;
      points.push_back({"wide", wide});
    }
    for (const std::string& protocol : fault::protocol_names(false)) {
      // The campaign matrix skips (budget-ignoring protocol, non-default
      // budget) cells rather than re-running identical work under a new
      // label; honor the same trait here, so the flat controls contribute
      // exactly one frontier point (the paper budget).
      const bool sensitive = fault::protocol_spec(protocol).space_sensitive;
      for (const BudgetPoint& point : points) {
        if (!sensitive && !point.space.is_default()) continue;
        std::fprintf(stderr,
                     "bprc_bench: space frontier %s @ %s n=%d (%llu "
                     "trials)...\n",
                     protocol.c_str(), point.space.to_string().c_str(), n,
                     static_cast<unsigned long long>(trials));
        const FrontierPerf serial =
            measure_space_frontier(protocol, point.space, n, trials, 1);
        const FrontierPerf wide_jobs = measure_space_frontier(
            protocol, point.space, n, trials, max_jobs);
        const FrontierPerf forked =
            measure_space_frontier(protocol, point.space, n, trials, 1, 2);
        BPRC_REQUIRE(wide_jobs.digest == serial.digest &&
                         forked.digest == serial.digest,
                     "frontier digest must not depend on jobs/workers");
        const std::string name = "space_frontier_" + protocol + "_" + point.tag;
        add(name, "steps/run@space", serial.mean_steps, "steps", n, trials);
        if (protocol == "bprc") {
          add(name, "bits/proc@space",
              space_bits_per_process(point.space, n), "bits", n, trials);
        }
        std::fprintf(stderr,
                     "  %.0f steps/run (digest %016llx, jobs%u + workers2 "
                     "identical)\n",
                     serial.mean_steps,
                     static_cast<unsigned long long>(serial.digest), max_jobs);
      }
    }
  }

  // Native-atomics lane: the scan-storm case (real threads, real
  // std::atomic) once with the weak-memory recorder off — the zero-cost
  // path, a null sink — and once recording + running the offline SC
  // checker. The delta between the two entries is the full observability
  // tax: per-action log appends plus the clock-vector analysis.
  {
    const int n = 4;
    const int iters = opt.smoke ? 60 : 400;
    std::fprintf(stderr,
                 "bprc_bench: native scan-storm n=%d (%d iters, "
                 "checker off vs on)...\n",
                 n, iters);
    const auto native_steps_per_sec = [&](bool check_sc) {
      NativeRunOptions nopt;
      nopt.nprocs = n;
      nopt.seed = 17;
      nopt.iters = iters;
      nopt.check_sc = check_sc;
      const auto t0 = std::chrono::steady_clock::now();
      const NativeOutcome out = run_native_case("scan-storm", nopt);
      const auto t1 = std::chrono::steady_clock::now();
      BPRC_REQUIRE(out.ok(), "native bench case failed");
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      return secs > 0.0 ? static_cast<double>(out.run.steps) / secs : 0.0;
    };
    const double off = native_steps_per_sec(false);
    add("native_steps_per_sec", "steps/sec@checker-off", off, "steps/s", n,
        static_cast<std::uint64_t>(iters));
    const double on = native_steps_per_sec(true);
    add("native_steps_per_sec", "steps/sec@checker-on", on, "steps/s", n,
        static_cast<std::uint64_t>(iters));
    std::fprintf(stderr,
                 "  checker off: %.0f steps/sec; on: %.0f steps/sec "
                 "(%.2fx overhead)\n",
                 off, on, on > 0.0 ? off / on : 0.0);
  }

  std::vector<std::string> lines;
  if (!opt.out_path.empty()) {
    lines = keep_foreign_entries(opt.out_path, opt.label);
  }
  for (const Entry& e : entries) lines.push_back(format_entry(e));
  const std::string text = render_file(lines);

  if (opt.out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream out(opt.out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bprc_bench: cannot write %s\n",
                 opt.out_path.c_str());
    return 1;
  }
  out << text;
  std::fprintf(stderr, "bprc_bench: wrote %zu entrie(s) to %s (label %s)\n",
               entries.size(), opt.out_path.c_str(), opt.label.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  return run(opt);
}
