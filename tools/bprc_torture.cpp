// bprc_torture — fault-injection campaign CLI.
//
// Sweeps (protocol × n × adversary × crash plan × input pattern × seed)
// over the deterministic simulator, checks every consensus invariant
// after each run, and turns any failure into a minimal replayable
// `.bprc-repro` artifact via delta-debugging. See docs/TESTING.md
// ("Torture harness") for the workflow.
//
//   bprc_torture                 full campaign (thousands of runs)
//   bprc_torture --smoke         few hundred runs; the ctest tier-1 mode
//   bprc_torture --inject-bug    run the pipeline against a protocol with
//                                a seeded bug: the campaign must catch it,
//                                shrink it, write the artifact, and replay
//                                it from disk (exit 0 iff all of that worked)
//   bprc_torture --replay F      re-run an artifact; exit 0 iff the
//                                recorded failure class reproduces
//   bprc_torture --list          registered protocols and adversaries
//   bprc_torture --jobs N        shard the sweep over N worker threads
//                                (engine::TrialExecutor). Default:
//                                hardware concurrency; --jobs 1 is the
//                                exact serial path. Failure reports,
//                                artifacts, and the summary digest are
//                                byte-identical at every jobs level.
//                                Forbidden with --replay (replay is
//                                definitionally serial).
//   bprc_torture --workers N     shard the sweep over N forked worker
//                                *processes* under the fault-tolerant
//                                coordinator (src/shard/): a trial that
//                                crashes its worker is retried and, past
//                                the respawn budget, quarantined as a
//                                worker-crash finding instead of killing
//                                the campaign. Digest identical to the
//                                serial run. --reap K turns on the
//                                WorkerReaper chaos harness (SIGKILLs K
//                                workers mid-sweep; digest unaffected).
//   bprc_torture --shard I/K     execute shard I of K in-process and
//                                write a mergeable .bprc-shard file
//   bprc_torture --merge F...    re-fold a full set of shard files into
//                                the exact serial report
//
// SIGINT/SIGTERM anywhere in a sweep flush the partial report — failures
// found so far are shrunk and persisted, the summary and digest print —
// before exiting 130; the coordinator forwards the signal to its workers
// and reaps them first.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/native.hpp"
#include "fault/protocols.hpp"
#include "fault/repro.hpp"
#include "fault/shrink.hpp"
#include "shard/coordinator.hpp"
#include "util/space_budget.hpp"
#include "util/stats.hpp"
#include "verify/weakmem/recorder.hpp"
#include "verify/weakmem/sc_checker.hpp"

namespace {

using namespace bprc;
using namespace bprc::fault;

struct Options {
  bool smoke = false;
  bool inject_bug = false;
  bool list = false;
  bool list_protocols = false;
  bool list_adversaries = false;
  bool quiet = false;
  bool verbose = false;
  bool jobs_given = false;
  unsigned jobs = 0;           // 0 = hardware concurrency
  std::string replay_path;
  std::string out_dir = ".";
  std::vector<std::string> protocols;
  std::vector<std::string> adversaries;
  std::vector<RegisterSemantics> semantics;  // empty = atomic-only matrix
  std::vector<SpaceBudget> spaces;           // empty = paper-default budget
  std::vector<int> ns;
  std::uint64_t seeds = 0;     // 0 = mode default
  std::uint64_t seed0 = 1;
  std::uint64_t budget = 0;    // 0 = mode default
  std::int64_t deadline_ms = -1;  // <0 = mode default
  std::size_t max_failures = 8;
  // Process sharding (src/shard/).
  bool workers_given = false;
  unsigned workers = 0;            // coordinator mode worker count
  std::uint64_t reap = 0;          // WorkerReaper kill count
  std::uint64_t reap_seed = 0x5EED;
  int max_respawns = 2;
  std::int64_t heartbeat_ms = -1;  // <0 = coordinator default
  bool shard_given = false;
  std::size_t shard_index = 0;     // --shard I/K
  std::size_t shard_count = 0;
  std::string shard_out;           // --shard-out FILE
  std::vector<std::string> merge_paths;  // --merge F1 F2 ...
  // Native-atomics lane (src/fault/native.hpp).
  bool native = false;
  bool check_sc = false;
  std::string native_case;         // empty = every non-broken case
  int native_iters = 0;            // 0 = case default
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bprc_torture [options]\n"
               "  --smoke            small matrix (tier-1 CI mode)\n"
               "  --inject-bug       pipeline self-test on a seeded bug\n"
               "  --replay FILE      re-run a .bprc-repro artifact\n"
               "  --list             print protocols and adversaries\n"
               "  --list-protocols   print one protocol per line with its\n"
               "                     registry traits (crash tolerance, stale-\n"
               "                     read liveness, safe-read tolerance,\n"
               "                     space sensitivity, ...); the name stays\n"
               "                     the first token for scripts\n"
               "  --list-adversaries print adversary names, one per line\n"
               "  --jobs N           worker threads for the sweep (default:\n"
               "                     hardware concurrency; 1 = serial)\n"
               "  --workers N        worker *processes* under the crash-\n"
               "                     surviving coordinator (digest-identical\n"
               "                     to the serial run)\n"
               "  --reap K           chaos: SIGKILL K workers mid-sweep on a\n"
               "                     seeded schedule (requires --workers)\n"
               "  --reap-seed S      seed for the reaper schedule\n"
               "  --max-respawns N   worker deaths a single trial may cause\n"
               "                     before quarantine (default 2)\n"
               "  --heartbeat-ms MS  worker liveness timeout (coordinator)\n"
               "  --shard I/K        run shard I of K (0-based) and write a\n"
               "                     mergeable shard file\n"
               "  --shard-out FILE   shard file path (default\n"
               "                     shard-I-of-K.bprc-shard)\n"
               "  --merge FILES...   re-fold shard files into the serial\n"
               "                     report (consumes remaining arguments)\n"
               "  --native           run the native-atomics cases on real\n"
               "                     threads (std::atomic registers)\n"
               "  --native-case NAME one native case (implies --native;\n"
               "                     broken cases must be named explicitly)\n"
               "  --check-sc         record every native atomic op and run\n"
               "                     the offline SC/linearizability checker;\n"
               "                     violations write a replayable\n"
               "                     .bprc-weakmem artifact into --out\n"
               "  --iters N          per-thread iterations for native cases\n"
               "  --protocol NAME    restrict to protocol (repeatable)\n"
               "  --adversary NAME   restrict to adversary (repeatable)\n"
               "  --register-semantics NAME\n"
               "                     sweep under atomic|regular|safe register\n"
               "                     semantics (repeatable; default atomic).\n"
               "                     Under regular/safe the adversary — not a\n"
               "                     PRNG — resolves reads that race a write,\n"
               "                     and the choices land in the artifact so\n"
               "                     --replay is bit-identical\n"
               "  --space SPEC       sweep at a space budget, e.g.\n"
               "                     K=3,b=8 or 'K=2 cycle=2 slots=3'\n"
               "                     (keys K cycle slots b mscale; cycle is\n"
               "                     the multiplier, physical cycle = K*mult;\n"
               "                     repeatable; default = paper budget\n"
               "                     K=2 cycle=3 slots=3 b=4 mscale=4).\n"
               "                     Space-insensitive protocols are skipped\n"
               "                     (and counted) at non-default budgets\n"
               "  --n N              process count (repeatable)\n"
               "  --seeds K          seeds per sweep cell\n"
               "  --seed S           base seed (default 1)\n"
               "  --budget STEPS     per-run step budget\n"
               "  --deadline-ms MS   per-run wall-clock watchdog (0 = off)\n"
               "  --max-failures K   stop after K failures (default 8)\n"
               "  --out DIR          artifact output directory (default .)\n"
               "  --quiet            suppress per-failure detail\n"
               "  --verbose          per-run step-rate log lines\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "bprc_torture: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--smoke") opt.smoke = true;
    else if (arg == "--inject-bug") opt.inject_bug = true;
    else if (arg == "--list") opt.list = true;
    else if (arg == "--list-protocols") opt.list_protocols = true;
    else if (arg == "--list-adversaries") opt.list_adversaries = true;
    else if (arg == "--jobs") {
      if (!(v = need_value(i))) return false;
      opt.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      opt.jobs_given = true;
    }
    else if (arg == "--native") opt.native = true;
    else if (arg == "--native-case") {
      if (!(v = need_value(i))) return false;
      opt.native_case = v;
      opt.native = true;
    }
    else if (arg == "--check-sc") opt.check_sc = true;
    else if (arg == "--iters") {
      if (!(v = need_value(i))) return false;
      opt.native_iters = std::atoi(v);
    }
    else if (arg == "--quiet" || arg == "-q") opt.quiet = true;
    else if (arg == "--verbose" || arg == "-v") opt.verbose = true;
    else if (arg == "--replay") { if (!(v = need_value(i))) return false; opt.replay_path = v; }
    else if (arg == "--out") { if (!(v = need_value(i))) return false; opt.out_dir = v; }
    else if (arg == "--protocol") { if (!(v = need_value(i))) return false; opt.protocols.push_back(v); }
    else if (arg == "--register-semantics") {
      if (!(v = need_value(i))) return false;
      RegisterSemantics s;
      if (!register_semantics_from_string(v, &s)) {
        std::fprintf(stderr,
                     "bprc_torture: unknown register semantics '%s' "
                     "(this build knows atomic, regular, safe)\n", v);
        return false;
      }
      opt.semantics.push_back(s);
    }
    else if (arg == "--space") {
      if (!(v = need_value(i))) return false;
      std::string why;
      const auto budget = SpaceBudget::parse(v, &why);
      if (!budget) {
        std::fprintf(stderr, "bprc_torture: bad --space '%s': %s\n", v,
                     why.c_str());
        return false;
      }
      opt.spaces.push_back(*budget);
    }
    else if (arg == "--adversary") { if (!(v = need_value(i))) return false; opt.adversaries.push_back(v); }
    else if (arg == "--n") { if (!(v = need_value(i))) return false; opt.ns.push_back(std::atoi(v)); }
    else if (arg == "--seeds") { if (!(v = need_value(i))) return false; opt.seeds = std::strtoull(v, nullptr, 10); }
    else if (arg == "--seed") { if (!(v = need_value(i))) return false; opt.seed0 = std::strtoull(v, nullptr, 10); }
    else if (arg == "--budget") { if (!(v = need_value(i))) return false; opt.budget = std::strtoull(v, nullptr, 10); }
    else if (arg == "--deadline-ms") { if (!(v = need_value(i))) return false; opt.deadline_ms = std::atoll(v); }
    else if (arg == "--max-failures") { if (!(v = need_value(i))) return false; opt.max_failures = std::strtoull(v, nullptr, 10); }
    else if (arg == "--workers") {
      if (!(v = need_value(i))) return false;
      opt.workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      opt.workers_given = true;
    }
    else if (arg == "--reap") { if (!(v = need_value(i))) return false; opt.reap = std::strtoull(v, nullptr, 10); }
    else if (arg == "--reap-seed") { if (!(v = need_value(i))) return false; opt.reap_seed = std::strtoull(v, nullptr, 10); }
    else if (arg == "--max-respawns") { if (!(v = need_value(i))) return false; opt.max_respawns = std::atoi(v); }
    else if (arg == "--heartbeat-ms") { if (!(v = need_value(i))) return false; opt.heartbeat_ms = std::atoll(v); }
    else if (arg == "--shard") {
      if (!(v = need_value(i))) return false;
      unsigned long long si = 0;
      unsigned long long sk = 0;
      if (std::sscanf(v, "%llu/%llu", &si, &sk) != 2 || sk == 0 || si >= sk) {
        std::fprintf(stderr,
                     "bprc_torture: --shard wants I/K with 0 <= I < K\n");
        return false;
      }
      opt.shard_index = static_cast<std::size_t>(si);
      opt.shard_count = static_cast<std::size_t>(sk);
      opt.shard_given = true;
    }
    else if (arg == "--shard-out") { if (!(v = need_value(i))) return false; opt.shard_out = v; }
    else if (arg == "--merge") {
      // Greedy: every remaining argument is a shard file.
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bprc_torture: --merge needs shard files\n");
        return false;
      }
      while (i + 1 < argc) opt.merge_paths.push_back(argv[++i]);
    }
    else if (arg == "--help" || arg == "-h") { usage(stdout); std::exit(0); }
    else {
      std::fprintf(stderr, "bprc_torture: unknown option %s\n", arg.c_str());
      usage(stderr);
      return false;
    }
  }
  return true;
}

bool validate_names(const Options& opt) {
  // Straight off the registry, not protocol_names(): the listings hide
  // crashes_process protocols (broken-segv) so no sweep stumbles into
  // them, but naming one explicitly is exactly how the shard
  // supervisor's quarantine path is exercised.
  for (const std::string& p : opt.protocols) {
    bool known = false;
    for (const ProtocolSpec& spec : protocol_registry()) {
      if (spec.name == p) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "bprc_torture: unknown protocol '%s'\n", p.c_str());
      return false;
    }
  }
  const auto& known_advs = torture_adversary_names();
  for (const std::string& a : opt.adversaries) {
    if (std::find(known_advs.begin(), known_advs.end(), a) ==
        known_advs.end()) {
      std::fprintf(stderr, "bprc_torture: unknown adversary '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

// Cooperative interruption: the handler only sets a flag; every sweep
// mode polls it via CampaignConfig::stop_requested and flushes whatever
// it has folded so far (failures shrunk and persisted, summary + digest
// printed) before exiting 130. The coordinator additionally SIGTERMs and
// reaps its workers on the way out.
volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void install_signal_handlers() {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

CampaignConfig build_config(const Options& opt) {
  CampaignConfig config;
  config.protocols = opt.protocols;
  config.adversaries = opt.adversaries;
  config.seed0 = opt.seed0;
  config.max_failures = opt.max_failures;
  config.jobs = opt.jobs;  // 0 = hardware concurrency (the CLI default)
  if (opt.smoke) {
    config.ns = {2, 3};
    config.seeds_per_cell = 1;
    config.max_steps = 8'000'000;
    config.run_deadline = std::chrono::milliseconds(3000);
  } else {
    config.ns = {2, 3, 5};
    config.seeds_per_cell = 3;
    config.max_steps = 40'000'000;
    config.run_deadline = std::chrono::milliseconds(5000);
  }
  if (!opt.ns.empty()) config.ns = opt.ns;
  if (!opt.semantics.empty()) config.semantics = opt.semantics;
  if (!opt.spaces.empty()) config.spaces = opt.spaces;
  if (opt.seeds != 0) config.seeds_per_cell = opt.seeds;
  if (opt.budget != 0) config.max_steps = opt.budget;
  if (opt.deadline_ms >= 0) {
    config.run_deadline = std::chrono::milliseconds(opt.deadline_ms);
  }
  config.stop_requested = [] { return g_stop != 0; };
  return config;
}

std::string artifact_path(const Options& opt, const TortureFailure& fail,
                          std::size_t index) {
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);  // best effort
  std::string path = opt.out_dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += fail.run.protocol + "-" + fail.run.adversary + "-n" +
          std::to_string(fail.run.n()) + "-" + std::to_string(index) +
          ".bprc-repro";
  return path;
}

void print_failure(const TortureFailure& fail, const ShrinkOutcome& shrunk,
                   const std::string& path) {
  std::fprintf(stderr,
               "FAILURE %s: protocol=%s n=%d adversary=%s seed=%llu "
               "reason=%s\n",
               to_string(fail.failure), fail.run.protocol.c_str(),
               fail.run.n(), fail.run.adversary.c_str(),
               static_cast<unsigned long long>(fail.run.seed),
               to_string(fail.reason));
  if (shrunk.reproduced) {
    std::fprintf(stderr,
                 "  shrunk schedule %zu -> %zu picks, %zu crash(es) "
                 "(%d probes)\n",
                 shrunk.original_len, shrunk.schedule.size(),
                 shrunk.crashes.size(), shrunk.probes);
  } else {
    std::fprintf(stderr,
                 "  not deterministically reproducible (reason=%s); "
                 "artifact holds the full trace\n",
                 to_string(fail.reason));
  }
  std::fprintf(stderr, "  artifact: %s  (re-run: bprc_torture --replay %s)\n",
               path.c_str(), path.c_str());
}

/// Shrinks every failure and writes artifacts; returns paths (empty
/// strings for artifacts that failed to write).
std::vector<std::string> process_failures(const Options& opt,
                                          CampaignReport& report) {
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    TortureFailure& fail = report.failures[i];
    const ShrinkOutcome shrunk =
        shrink_failure(fail, /*max_probes=*/4000, opt.jobs);
    const Repro repro = make_repro(fail, shrunk.schedule, shrunk.crashes);
    const std::string path = artifact_path(opt, fail, i);
    const bool saved = save_repro(path, repro);
    if (!saved) {
      std::fprintf(stderr, "bprc_torture: cannot write %s\n", path.c_str());
    }
    if (!opt.quiet) print_failure(fail, shrunk, path);
    paths.push_back(saved ? path : std::string{});
  }
  return paths;
}

/// --replay on a `.bprc-weakmem` artifact: re-run the offline analysis
/// on the recorded execution. Exit 0 = the recording is SC (nothing to
/// reproduce); 1 = the non-SC verdict reproduces, witness printed.
int run_weakmem_replay(const std::string& path) {
  const auto rec = weakmem::load_recording(path);
  if (!rec) {
    std::fprintf(stderr, "bprc_torture: %s: malformed weakmem artifact\n",
                 path.c_str());
    return 2;
  }
  const weakmem::SCResult res = weakmem::check_sc(*rec);
  std::printf("replay %s\n", path.c_str());
  std::printf("  native case=%s threads=%zu locations=%zu actions=%zu\n",
              rec->case_name.empty() ? "?" : rec->case_name.c_str(),
              rec->logs.size(), rec->locations.size(), rec->total_actions());
  if (res.ok()) {
    std::printf("  observed: SC (checker found no violation)\n");
    return 0;
  }
  std::printf("  observed: %s\n%s\n",
              res.well_formed ? "NON-SC — REPRODUCED" : "MALFORMED RECORDING",
              res.witness.c_str());
  return 1;
}

int run_replay(const std::string& path) {
  if (weakmem::is_weakmem_artifact(path)) return run_weakmem_replay(path);
  std::string err;
  const auto repro = load_repro(path, &err);
  if (!repro) {
    std::fprintf(stderr, "bprc_torture: %s\n", err.c_str());
    return 2;
  }
  const ConsensusRunResult result = replay_repro(*repro);
  std::printf("replay %s\n", path.c_str());
  std::printf("  protocol=%s n=%d recorded-failure=%s\n",
              repro->run.protocol.c_str(), repro->run.n(),
              to_string(repro->failure));
  std::printf("  observed: failure=%s reason=%s steps=%llu decisions=",
              to_string(result.failure()), to_string(result.reason),
              static_cast<unsigned long long>(result.total_steps));
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    std::printf("%s%d", i ? "," : "", result.decisions[i]);
  }
  std::printf("\n");
  if (result.failure() == repro->failure) {
    std::printf("  REPRODUCED\n");
    return 0;
  }
  std::printf("  DID NOT REPRODUCE\n");
  return 3;
}

/// --inject-bug: end-to-end self-test of the catch→shrink→persist→replay
/// pipeline against the seeded broken protocol.
int run_inject_bug(const Options& opt) {
  CampaignConfig config = build_config(opt);
  config.protocols = {"broken-racy"};
  if (opt.ns.empty()) config.ns = {2, 3};
  config.max_failures = std::max<std::size_t>(1, opt.max_failures);

  CampaignReport report = run_campaign(config);
  std::printf("inject-bug: %llu runs, %zu failure(s) caught\n",
              static_cast<unsigned long long>(report.runs),
              report.failures.size());
  if (report.failures.empty()) {
    std::fprintf(stderr,
                 "inject-bug: campaign FAILED to catch the seeded bug\n");
    return 1;
  }

  const TortureFailure& fail = report.failures.front();
  const ShrinkOutcome shrunk =
      shrink_failure(fail, /*max_probes=*/4000, opt.jobs);
  if (!shrunk.reproduced) {
    std::fprintf(stderr, "inject-bug: recorded trace did not replay\n");
    return 1;
  }
  std::printf("inject-bug: shrunk %zu -> %zu picks, %zu crash(es)\n",
              shrunk.original_len, shrunk.schedule.size(),
              shrunk.crashes.size());

  const Repro repro = make_repro(fail, shrunk.schedule, shrunk.crashes);
  const std::string path = artifact_path(opt, fail, 0);
  if (!save_repro(path, repro)) {
    std::fprintf(stderr, "inject-bug: cannot write %s\n", path.c_str());
    return 1;
  }
  // Replay through the *file*, not the in-memory object: the round trip
  // is part of what this mode certifies.
  const int replay_rc = run_replay(path);
  if (replay_rc != 0) {
    std::fprintf(stderr, "inject-bug: artifact replay FAILED\n");
    return 1;
  }
  std::printf("inject-bug: OK (artifact %s)\n", path.c_str());
  return 0;
}

/// --verbose observer: one log line per completed run with its simulated
/// step rate. Wall-clock timing only (util/stats.hpp Throughput) — it
/// never feeds back into the simulation, so schedules stay deterministic.
RunObserver make_verbose_observer(Throughput& timer) {
  return [&timer](const TortureRun& run, const ConsensusRunResult& result) {
    std::fprintf(stderr,
                 "  %s/%s n=%d seed=%llu plan=%zu: steps=%llu"
                 " %.2f Msteps/s (%s)\n",
                 run.protocol.c_str(), run.adversary.c_str(), run.n(),
                 static_cast<unsigned long long>(run.seed),
                 run.crash_plan.size(),
                 static_cast<unsigned long long>(result.total_steps),
                 timer.per_second(result.total_steps) * 1e-6,
                 to_string(result.reason));
    timer.reset();
  };
}

/// Common tail of every sweep-producing mode: persist failures, print the
/// summary and the digest witness, map the report to an exit code.
int finish_report(const Options& opt, CampaignReport& report, double secs) {
  process_failures(opt, report);
  std::printf(
      "torture: %llu runs in %.1fs — %zu failure(s), %llu budget abort(s), "
      "%llu deadline abort(s), %llu crash cell(s) skipped (non-crash-"
      "tolerant protocols)\n",
      static_cast<unsigned long long>(report.runs), secs,
      report.failures.size(),
      static_cast<unsigned long long>(report.budget_aborts),
      static_cast<unsigned long long>(report.deadline_aborts),
      static_cast<unsigned long long>(report.skipped_crash_cells));
  if (report.skipped_safe_cells != 0) {
    std::printf(
        "torture: %llu safe-semantics cell(s) skipped (protocol invariants "
        "reject safe-register reads; docs/REGISTER_SEMANTICS.md)\n",
        static_cast<unsigned long long>(report.skipped_safe_cells));
  }
  if (report.skipped_space_cells != 0) {
    std::printf(
        "torture: %llu space cell(s) skipped (protocol layout ignores the "
        "budget; docs/SPACE_BUDGETS.md)\n",
        static_cast<unsigned long long>(report.skipped_space_cells));
  }
  // Independence witness: identical at every --jobs level, every
  // --workers count, and across --shard/--merge round trips (CI diffs
  // this line).
  std::printf("digest=0x%016llx\n",
              static_cast<unsigned long long>(report.summary_digest));
  if (report.interrupted) {
    std::fprintf(stderr,
                 "torture: interrupted — partial results flushed\n");
    return 130;
  }
  return report.ok() ? 0 : 1;
}

/// --native: run native-atomics cases on real threads, graded by the SC
/// checker (--check-sc) and — for the consensus case — the standard
/// oracle. Exit 0 iff every selected case behaved; the ctest native tier
/// runs broken cases under WILL_FAIL, same idiom as broken protocols.
int run_native_mode(const Options& opt) {
  std::vector<std::string> selected;
  if (!opt.native_case.empty()) {
    if (find_native_case(opt.native_case) == nullptr) {
      std::fprintf(stderr, "bprc_torture: unknown native case '%s'\n",
                   opt.native_case.c_str());
      return 2;
    }
    selected.push_back(opt.native_case);
  } else {
    for (const NativeCaseSpec& spec : native_cases()) {
      if (!spec.broken) selected.push_back(spec.name);
    }
  }

  NativeRunOptions run_opts;
  run_opts.nprocs = opt.ns.empty() ? 4 : opt.ns.front();
  run_opts.seed = opt.seed0;
  run_opts.check_sc = opt.check_sc;
  if (opt.budget != 0) run_opts.max_steps = opt.budget;
  if (opt.native_iters > 0) run_opts.iters = opt.native_iters;
  if (opt.deadline_ms >= 0) {
    run_opts.deadline = std::chrono::milliseconds(opt.deadline_ms);
  }

  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);  // best effort

  bool all_ok = true;
  for (const std::string& name : selected) {
    NativeRunOptions case_opts = run_opts;
    if (opt.check_sc) {
      std::string path = opt.out_dir;
      if (!path.empty() && path.back() != '/') path += '/';
      case_opts.artifact_path = path + name + ".bprc-weakmem";
    }
    const NativeOutcome out = run_native_case(name, case_opts);
    std::printf("native %-14s steps=%-8llu reason=%-8s", name.c_str(),
                static_cast<unsigned long long>(out.run.steps),
                to_string(out.run.reason));
    if (out.checked) {
      std::printf(" actions=%-7zu sc=%s", out.actions,
                  out.sc.ok() ? "OK" : "VIOLATION");
    }
    if (out.graded_consensus) {
      std::printf(" oracle=%s", out.consensus.ok()
                                    ? "OK"
                                    : to_string(out.consensus.failure()));
    }
    std::printf("\n");
    if (!out.ok()) {
      all_ok = false;
      if (out.checked && !out.sc.ok()) {
        if (!opt.quiet) std::fprintf(stderr, "%s\n", out.sc.witness.c_str());
        if (!out.artifact.empty()) {
          std::fprintf(stderr,
                       "  artifact: %s  (re-run: bprc_torture --replay %s)\n",
                       out.artifact.c_str(), out.artifact.c_str());
        }
      }
    }
  }
  return all_ok ? 0 : 1;
}

int run_campaign_mode(const Options& opt) {
  const CampaignConfig config = build_config(opt);
  const auto started = std::chrono::steady_clock::now();
  Throughput run_timer;
  CampaignReport report = run_campaign(
      config, opt.verbose ? make_verbose_observer(run_timer) : RunObserver{});
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return finish_report(opt, report, secs);
}

/// --workers N: the fault-tolerant multi-process coordinator.
int run_workers_mode(const Options& opt) {
  shard::ShardServiceConfig config;
  config.campaign = build_config(opt);
  config.workers = opt.workers;
  config.max_respawns = opt.max_respawns;
  config.reaper_kills = opt.reap;
  config.reaper_seed = opt.reap_seed;
  if (opt.heartbeat_ms >= 0) {
    config.heartbeat_timeout = std::chrono::milliseconds(opt.heartbeat_ms);
  }
  if (!opt.quiet) {
    config.log = [](const std::string& msg) {
      std::fprintf(stderr, "supervisor: %s\n", msg.c_str());
    };
  }
  const auto started = std::chrono::steady_clock::now();
  CampaignReport report = shard::run_sharded_campaign(config);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return finish_report(opt, report, secs);
}

/// --shard I/K: execute one range in-process, write the shard file.
int run_shard_mode(const Options& opt) {
  const CampaignConfig config = build_config(opt);
  std::string path = opt.shard_out;
  if (path.empty()) {
    path = "shard-" + std::to_string(opt.shard_index) + "-of-" +
           std::to_string(opt.shard_count) + ".bprc-shard";
  }
  const shard::ShardFile file =
      shard::run_shard(config, opt.shard_index, opt.shard_count);
  if (!shard::save_shard_file(path, file)) {
    std::fprintf(stderr, "bprc_torture: cannot write %s\n", path.c_str());
    return 2;
  }
  std::printf("shard %zu/%zu: %zu of %llu runs -> %s\n", opt.shard_index,
              opt.shard_count, file.records.size(),
              static_cast<unsigned long long>(file.total_runs), path.c_str());
  if (g_stop != 0) {
    std::fprintf(stderr,
                 "torture: interrupted — shard truncated at index %zu\n",
                 file.end);
    return 130;
  }
  return 0;
}

/// --merge F...: re-fold a full shard set into the serial report.
int run_merge_mode(const Options& opt) {
  std::vector<shard::ShardFile> shards;
  for (const std::string& path : opt.merge_paths) {
    std::string err;
    std::optional<shard::ShardFile> file = shard::load_shard_file(path, &err);
    if (!file) {
      std::fprintf(stderr, "bprc_torture: %s: %s\n", path.c_str(),
                   err.c_str());
      return 2;
    }
    shards.push_back(std::move(*file));
  }
  shard::MergeResult merged = shard::merge_shard_files(shards);
  if (!merged.ok) {
    std::fprintf(stderr, "bprc_torture: merge refused: %s\n",
                 merged.error.c_str());
    return 2;
  }
  return finish_report(opt, merged.report, 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  if (!validate_names(opt)) return 2;

  // Mode conflicts, refused before any work starts.
  const int exclusive_modes = (opt.workers_given ? 1 : 0) +
                              (opt.shard_given ? 1 : 0) +
                              (!opt.merge_paths.empty() ? 1 : 0) +
                              (!opt.replay_path.empty() ? 1 : 0) +
                              (opt.inject_bug ? 1 : 0) +
                              (opt.native ? 1 : 0);
  if (exclusive_modes > 1) {
    std::fprintf(stderr,
                 "bprc_torture: --workers, --shard, --merge, --replay, "
                 "--inject-bug and --native are mutually exclusive\n");
    return 2;
  }
  if (opt.check_sc && !opt.native && opt.replay_path.empty()) {
    std::fprintf(stderr,
                 "bprc_torture: --check-sc only makes sense with --native\n");
    return 2;
  }
  if (opt.workers_given && opt.jobs_given) {
    std::fprintf(stderr,
                 "bprc_torture: --workers (processes) and --jobs (threads) "
                 "cannot be combined; pick one sharding axis\n");
    return 2;
  }
  if (opt.workers_given && opt.workers == 0) {
    std::fprintf(stderr, "bprc_torture: --workers wants N >= 1\n");
    return 2;
  }
  if (opt.reap != 0 && !opt.workers_given) {
    std::fprintf(stderr,
                 "bprc_torture: --reap only makes sense with --workers\n");
    return 2;
  }
  if (!opt.shard_out.empty() && !opt.shard_given) {
    std::fprintf(stderr,
                 "bprc_torture: --shard-out only makes sense with --shard\n");
    return 2;
  }

  if (opt.list) {
    std::printf("protocols:");
    for (const auto& name : protocol_names(/*include_broken=*/true)) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\nadversaries:");
    for (const auto& name : torture_adversary_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }
  if (opt.list_protocols || opt.list_adversaries) {
    // Machine-readable (one record per line, name first) for scripts and
    // CI matrices.
    if (opt.list_protocols) {
      // The full registry, traits and all — including crashes_process
      // entries that protocol_names() hides from sweeps. Scripts that
      // want sweep-safe names filter on the traits they care about.
      for (const ProtocolSpec& spec : protocol_registry()) {
        std::printf(
            "%-22s broken=%d crash_tolerant=%d live_under_stale_reads=%d "
            "tolerates_safe_reads=%d space_sensitive=%d crashes_process=%d\n",
            spec.name.c_str(), spec.broken ? 1 : 0, spec.crash_tolerant ? 1 : 0,
            spec.live_under_stale_reads ? 1 : 0,
            spec.tolerates_safe_reads ? 1 : 0, spec.space_sensitive ? 1 : 0,
            spec.crashes_process ? 1 : 0);
      }
    }
    if (opt.list_adversaries) {
      for (const auto& name : torture_adversary_names()) {
        std::printf("%s\n", name.c_str());
      }
    }
    return 0;
  }
  if (!opt.replay_path.empty()) {
    // Replay is a single scripted run; sharding it is meaningless and
    // would only invite divergent expectations. Refuse loudly.
    if (opt.jobs_given) {
      std::fprintf(stderr, "bprc_torture: --jobs cannot be combined with "
                           "--replay (replay is a single serial run)\n");
      return 2;
    }
    return run_replay(opt.replay_path);
  }
  if (opt.inject_bug) return run_inject_bug(opt);
  if (opt.native) return run_native_mode(opt);
  install_signal_handlers();
  if (!opt.merge_paths.empty()) return run_merge_mode(opt);
  if (opt.shard_given) return run_shard_mode(opt);
  if (opt.workers_given) return run_workers_mode(opt);
  return run_campaign_mode(opt);
}
