// bprc_torture — fault-injection campaign CLI.
//
// Sweeps (protocol × n × adversary × crash plan × input pattern × seed)
// over the deterministic simulator, checks every consensus invariant
// after each run, and turns any failure into a minimal replayable
// `.bprc-repro` artifact via delta-debugging. See docs/TESTING.md
// ("Torture harness") for the workflow.
//
//   bprc_torture                 full campaign (thousands of runs)
//   bprc_torture --smoke         few hundred runs; the ctest tier-1 mode
//   bprc_torture --inject-bug    run the pipeline against a protocol with
//                                a seeded bug: the campaign must catch it,
//                                shrink it, write the artifact, and replay
//                                it from disk (exit 0 iff all of that worked)
//   bprc_torture --replay F      re-run an artifact; exit 0 iff the
//                                recorded failure class reproduces
//   bprc_torture --list          registered protocols and adversaries
//   bprc_torture --jobs N        shard the sweep over N worker threads
//                                (engine::TrialExecutor). Default:
//                                hardware concurrency; --jobs 1 is the
//                                exact serial path. Failure reports,
//                                artifacts, and the summary digest are
//                                byte-identical at every jobs level.
//                                Forbidden with --replay (replay is
//                                definitionally serial).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/protocols.hpp"
#include "fault/repro.hpp"
#include "fault/shrink.hpp"
#include "util/stats.hpp"

namespace {

using namespace bprc;
using namespace bprc::fault;

struct Options {
  bool smoke = false;
  bool inject_bug = false;
  bool list = false;
  bool list_protocols = false;
  bool list_adversaries = false;
  bool quiet = false;
  bool verbose = false;
  bool jobs_given = false;
  unsigned jobs = 0;           // 0 = hardware concurrency
  std::string replay_path;
  std::string out_dir = ".";
  std::vector<std::string> protocols;
  std::vector<std::string> adversaries;
  std::vector<int> ns;
  std::uint64_t seeds = 0;     // 0 = mode default
  std::uint64_t seed0 = 1;
  std::uint64_t budget = 0;    // 0 = mode default
  std::int64_t deadline_ms = -1;  // <0 = mode default
  std::size_t max_failures = 8;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bprc_torture [options]\n"
               "  --smoke            small matrix (tier-1 CI mode)\n"
               "  --inject-bug       pipeline self-test on a seeded bug\n"
               "  --replay FILE      re-run a .bprc-repro artifact\n"
               "  --list             print protocols and adversaries\n"
               "  --list-protocols   print protocol names, one per line\n"
               "  --list-adversaries print adversary names, one per line\n"
               "  --jobs N           worker threads for the sweep (default:\n"
               "                     hardware concurrency; 1 = serial)\n"
               "  --protocol NAME    restrict to protocol (repeatable)\n"
               "  --adversary NAME   restrict to adversary (repeatable)\n"
               "  --n N              process count (repeatable)\n"
               "  --seeds K          seeds per sweep cell\n"
               "  --seed S           base seed (default 1)\n"
               "  --budget STEPS     per-run step budget\n"
               "  --deadline-ms MS   per-run wall-clock watchdog (0 = off)\n"
               "  --max-failures K   stop after K failures (default 8)\n"
               "  --out DIR          artifact output directory (default .)\n"
               "  --quiet            suppress per-failure detail\n"
               "  --verbose          per-run step-rate log lines\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "bprc_torture: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--smoke") opt.smoke = true;
    else if (arg == "--inject-bug") opt.inject_bug = true;
    else if (arg == "--list") opt.list = true;
    else if (arg == "--list-protocols") opt.list_protocols = true;
    else if (arg == "--list-adversaries") opt.list_adversaries = true;
    else if (arg == "--jobs") {
      if (!(v = need_value(i))) return false;
      opt.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      opt.jobs_given = true;
    }
    else if (arg == "--quiet" || arg == "-q") opt.quiet = true;
    else if (arg == "--verbose" || arg == "-v") opt.verbose = true;
    else if (arg == "--replay") { if (!(v = need_value(i))) return false; opt.replay_path = v; }
    else if (arg == "--out") { if (!(v = need_value(i))) return false; opt.out_dir = v; }
    else if (arg == "--protocol") { if (!(v = need_value(i))) return false; opt.protocols.push_back(v); }
    else if (arg == "--adversary") { if (!(v = need_value(i))) return false; opt.adversaries.push_back(v); }
    else if (arg == "--n") { if (!(v = need_value(i))) return false; opt.ns.push_back(std::atoi(v)); }
    else if (arg == "--seeds") { if (!(v = need_value(i))) return false; opt.seeds = std::strtoull(v, nullptr, 10); }
    else if (arg == "--seed") { if (!(v = need_value(i))) return false; opt.seed0 = std::strtoull(v, nullptr, 10); }
    else if (arg == "--budget") { if (!(v = need_value(i))) return false; opt.budget = std::strtoull(v, nullptr, 10); }
    else if (arg == "--deadline-ms") { if (!(v = need_value(i))) return false; opt.deadline_ms = std::atoll(v); }
    else if (arg == "--max-failures") { if (!(v = need_value(i))) return false; opt.max_failures = std::strtoull(v, nullptr, 10); }
    else if (arg == "--help" || arg == "-h") { usage(stdout); std::exit(0); }
    else {
      std::fprintf(stderr, "bprc_torture: unknown option %s\n", arg.c_str());
      usage(stderr);
      return false;
    }
  }
  return true;
}

bool validate_names(const Options& opt) {
  const auto known_protocols = protocol_names(/*include_broken=*/true);
  for (const std::string& p : opt.protocols) {
    if (std::find(known_protocols.begin(), known_protocols.end(), p) ==
        known_protocols.end()) {
      std::fprintf(stderr, "bprc_torture: unknown protocol '%s'\n", p.c_str());
      return false;
    }
  }
  const auto& known_advs = torture_adversary_names();
  for (const std::string& a : opt.adversaries) {
    if (std::find(known_advs.begin(), known_advs.end(), a) ==
        known_advs.end()) {
      std::fprintf(stderr, "bprc_torture: unknown adversary '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

CampaignConfig build_config(const Options& opt) {
  CampaignConfig config;
  config.protocols = opt.protocols;
  config.adversaries = opt.adversaries;
  config.seed0 = opt.seed0;
  config.max_failures = opt.max_failures;
  config.jobs = opt.jobs;  // 0 = hardware concurrency (the CLI default)
  if (opt.smoke) {
    config.ns = {2, 3};
    config.seeds_per_cell = 1;
    config.max_steps = 8'000'000;
    config.run_deadline = std::chrono::milliseconds(3000);
  } else {
    config.ns = {2, 3, 5};
    config.seeds_per_cell = 3;
    config.max_steps = 40'000'000;
    config.run_deadline = std::chrono::milliseconds(5000);
  }
  if (!opt.ns.empty()) config.ns = opt.ns;
  if (opt.seeds != 0) config.seeds_per_cell = opt.seeds;
  if (opt.budget != 0) config.max_steps = opt.budget;
  if (opt.deadline_ms >= 0) {
    config.run_deadline = std::chrono::milliseconds(opt.deadline_ms);
  }
  return config;
}

std::string artifact_path(const Options& opt, const TortureFailure& fail,
                          std::size_t index) {
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);  // best effort
  std::string path = opt.out_dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += fail.run.protocol + "-" + fail.run.adversary + "-n" +
          std::to_string(fail.run.n()) + "-" + std::to_string(index) +
          ".bprc-repro";
  return path;
}

void print_failure(const TortureFailure& fail, const ShrinkOutcome& shrunk,
                   const std::string& path) {
  std::fprintf(stderr,
               "FAILURE %s: protocol=%s n=%d adversary=%s seed=%llu "
               "reason=%s\n",
               to_string(fail.failure), fail.run.protocol.c_str(),
               fail.run.n(), fail.run.adversary.c_str(),
               static_cast<unsigned long long>(fail.run.seed),
               to_string(fail.reason));
  if (shrunk.reproduced) {
    std::fprintf(stderr,
                 "  shrunk schedule %zu -> %zu picks, %zu crash(es) "
                 "(%d probes)\n",
                 shrunk.original_len, shrunk.schedule.size(),
                 shrunk.crashes.size(), shrunk.probes);
  } else {
    std::fprintf(stderr,
                 "  not deterministically reproducible (reason=%s); "
                 "artifact holds the full trace\n",
                 to_string(fail.reason));
  }
  std::fprintf(stderr, "  artifact: %s  (re-run: bprc_torture --replay %s)\n",
               path.c_str(), path.c_str());
}

/// Shrinks every failure and writes artifacts; returns paths (empty
/// strings for artifacts that failed to write).
std::vector<std::string> process_failures(const Options& opt,
                                          CampaignReport& report) {
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    TortureFailure& fail = report.failures[i];
    const ShrinkOutcome shrunk =
        shrink_failure(fail, /*max_probes=*/4000, opt.jobs);
    const Repro repro = make_repro(fail, shrunk.schedule, shrunk.crashes);
    const std::string path = artifact_path(opt, fail, i);
    const bool saved = save_repro(path, repro);
    if (!saved) {
      std::fprintf(stderr, "bprc_torture: cannot write %s\n", path.c_str());
    }
    if (!opt.quiet) print_failure(fail, shrunk, path);
    paths.push_back(saved ? path : std::string{});
  }
  return paths;
}

int run_replay(const std::string& path) {
  std::string err;
  const auto repro = load_repro(path, &err);
  if (!repro) {
    std::fprintf(stderr, "bprc_torture: %s\n", err.c_str());
    return 2;
  }
  const ConsensusRunResult result = replay_repro(*repro);
  std::printf("replay %s\n", path.c_str());
  std::printf("  protocol=%s n=%d recorded-failure=%s\n",
              repro->run.protocol.c_str(), repro->run.n(),
              to_string(repro->failure));
  std::printf("  observed: failure=%s reason=%s steps=%llu decisions=",
              to_string(result.failure()), to_string(result.reason),
              static_cast<unsigned long long>(result.total_steps));
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    std::printf("%s%d", i ? "," : "", result.decisions[i]);
  }
  std::printf("\n");
  if (result.failure() == repro->failure) {
    std::printf("  REPRODUCED\n");
    return 0;
  }
  std::printf("  DID NOT REPRODUCE\n");
  return 3;
}

/// --inject-bug: end-to-end self-test of the catch→shrink→persist→replay
/// pipeline against the seeded broken protocol.
int run_inject_bug(const Options& opt) {
  CampaignConfig config = build_config(opt);
  config.protocols = {"broken-racy"};
  if (opt.ns.empty()) config.ns = {2, 3};
  config.max_failures = std::max<std::size_t>(1, opt.max_failures);

  CampaignReport report = run_campaign(config);
  std::printf("inject-bug: %llu runs, %zu failure(s) caught\n",
              static_cast<unsigned long long>(report.runs),
              report.failures.size());
  if (report.failures.empty()) {
    std::fprintf(stderr,
                 "inject-bug: campaign FAILED to catch the seeded bug\n");
    return 1;
  }

  const TortureFailure& fail = report.failures.front();
  const ShrinkOutcome shrunk =
      shrink_failure(fail, /*max_probes=*/4000, opt.jobs);
  if (!shrunk.reproduced) {
    std::fprintf(stderr, "inject-bug: recorded trace did not replay\n");
    return 1;
  }
  std::printf("inject-bug: shrunk %zu -> %zu picks, %zu crash(es)\n",
              shrunk.original_len, shrunk.schedule.size(),
              shrunk.crashes.size());

  const Repro repro = make_repro(fail, shrunk.schedule, shrunk.crashes);
  const std::string path = artifact_path(opt, fail, 0);
  if (!save_repro(path, repro)) {
    std::fprintf(stderr, "inject-bug: cannot write %s\n", path.c_str());
    return 1;
  }
  // Replay through the *file*, not the in-memory object: the round trip
  // is part of what this mode certifies.
  const int replay_rc = run_replay(path);
  if (replay_rc != 0) {
    std::fprintf(stderr, "inject-bug: artifact replay FAILED\n");
    return 1;
  }
  std::printf("inject-bug: OK (artifact %s)\n", path.c_str());
  return 0;
}

/// --verbose observer: one log line per completed run with its simulated
/// step rate. Wall-clock timing only (util/stats.hpp Throughput) — it
/// never feeds back into the simulation, so schedules stay deterministic.
RunObserver make_verbose_observer(Throughput& timer) {
  return [&timer](const TortureRun& run, const ConsensusRunResult& result) {
    std::fprintf(stderr,
                 "  %s/%s n=%d seed=%llu plan=%zu: steps=%llu"
                 " %.2f Msteps/s (%s)\n",
                 run.protocol.c_str(), run.adversary.c_str(), run.n(),
                 static_cast<unsigned long long>(run.seed),
                 run.crash_plan.size(),
                 static_cast<unsigned long long>(result.total_steps),
                 timer.per_second(result.total_steps) * 1e-6,
                 to_string(result.reason));
    timer.reset();
  };
}

int run_campaign_mode(const Options& opt) {
  const CampaignConfig config = build_config(opt);
  const auto started = std::chrono::steady_clock::now();
  Throughput run_timer;
  CampaignReport report = run_campaign(
      config, opt.verbose ? make_verbose_observer(run_timer) : RunObserver{});
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  process_failures(opt, report);
  std::printf(
      "torture: %llu runs in %.1fs — %zu failure(s), %llu budget abort(s), "
      "%llu deadline abort(s), %llu crash cell(s) skipped (non-crash-"
      "tolerant protocols)\n",
      static_cast<unsigned long long>(report.runs), secs,
      report.failures.size(),
      static_cast<unsigned long long>(report.budget_aborts),
      static_cast<unsigned long long>(report.deadline_aborts),
      static_cast<unsigned long long>(report.skipped_crash_cells));
  // Jobs-independence witness: identical at every --jobs level (CI diffs
  // --jobs 1 vs --jobs 2 on this line).
  std::printf("digest=0x%016llx\n",
              static_cast<unsigned long long>(report.summary_digest));
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  if (!validate_names(opt)) return 2;

  if (opt.list) {
    std::printf("protocols:");
    for (const auto& name : protocol_names(/*include_broken=*/true)) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\nadversaries:");
    for (const auto& name : torture_adversary_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }
  if (opt.list_protocols || opt.list_adversaries) {
    // Machine-readable (one name per line) for scripts and CI matrices.
    if (opt.list_protocols) {
      for (const auto& name : protocol_names(/*include_broken=*/true)) {
        std::printf("%s\n", name.c_str());
      }
    }
    if (opt.list_adversaries) {
      for (const auto& name : torture_adversary_names()) {
        std::printf("%s\n", name.c_str());
      }
    }
    return 0;
  }
  if (!opt.replay_path.empty()) {
    // Replay is a single scripted run; sharding it is meaningless and
    // would only invite divergent expectations. Refuse loudly.
    if (opt.jobs_given) {
      std::fprintf(stderr, "bprc_torture: --jobs cannot be combined with "
                           "--replay (replay is a single serial run)\n");
      return 2;
    }
    return run_replay(opt.replay_path);
  }
  if (opt.inject_bug) return run_inject_bug(opt);
  return run_campaign_mode(opt);
}
