// bprc_explore — bounded model checker CLI for small-n configurations.
//
// Where bprc_torture *samples* schedules, this tool *enumerates* them:
// every interleaving within a bounded branch region (plus both outcomes
// of the first few coin flips) is executed on the deterministic
// simulator and graded with the full consensus oracle. See
// docs/TESTING.md ("Exploration tier").
//
//   bprc_explore --smoke          n=2 exhaustive sweep of every registered
//                                 protocol (all 2^n input vectors): real
//                                 protocols must be clean, seeded-broken
//                                 protocols must be caught (exit 0 iff both)
//   bprc_explore --protocol P --n N   explore one protocol; exit 1 iff a
//                                 violation was found
//   bprc_explore --claim41        exhaustively interleave the token game
//                                 against the incremental distance graph
//   bprc_explore --list           registered protocols
//
// Violations are written as `.bprc-repro` artifacts (with --out DIR) that
// `bprc_torture --replay` confirms.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "explore/consensus_explore.hpp"
#include "explore/explorer.hpp"
#include "explore/frontier.hpp"
#include "explore/token_game_explore.hpp"
#include "fault/protocols.hpp"
#include "fault/repro.hpp"
#include "util/space_budget.hpp"

namespace {

using namespace bprc;
using namespace bprc::explore;

struct Options {
  bool smoke = false;
  bool list = false;
  bool stats = false;
  bool claim41 = false;
  bool sleep_sets = true;
  bool state_cache = true;
  bool reuse_runtime = true;
  bool compact_cache = true;
  bool isolate = false;
  std::vector<std::string> protocols;
  std::vector<int> inputs;  // non-empty = explore one input cell only
  int n = 2;
  int strip_k = 2;    // --claim41: token-game shrink constant K
  int moves = 3;      // --claim41: moves per process
  unsigned jobs = 1;  // leaf-grading workers; 0 = one per core
  RegisterSemantics semantics = RegisterSemantics::kAtomic;
  SpaceBudget space;  // default = paper budget
  std::uint64_t depth = 10;
  std::uint64_t coin_flips = 3;
  std::uint64_t max_stale_reads = 3;
  std::uint64_t budget = 200'000;
  std::uint64_t seed = 1;
  std::uint64_t max_cache_mb = 0;
  std::uint64_t max_executions = 0;
  std::uint64_t max_states = 0;
  std::size_t max_violations = 8;
  std::uint32_t split_index = 0;
  std::uint32_t split_count = 0;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_out;  // empty = no frontier checkpoints
  std::string resume_path;     // non-empty = continue a saved frontier
  std::string out_dir;  // empty = do not write artifacts
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bprc_explore [options]\n"
               "  --smoke            n=2 exhaustive sweep, all protocols\n"
               "  --claim41          token game vs distance graph\n"
               "  --list             print registered protocols\n"
               "  --protocol NAME    protocol to explore (repeatable)\n"
               "  --n N              process count (default 2)\n"
               "  --depth D          branch region: scheduling points\n"
               "                     explored with full branching\n"
               "  --coin-flips C     coin flips branched both ways\n"
               "  --register-semantics NAME\n"
               "                     explore under atomic|regular|safe\n"
               "                     register semantics (default atomic).\n"
               "                     Weakened reads become branch points:\n"
               "                     every adversary-resolvable stale value\n"
               "                     is enumerated like a coin flip\n"
               "  --max-stale-reads K\n"
               "                     stale reads branched exhaustively per\n"
               "                     execution (default 3; later reads take\n"
               "                     the atomic value)\n"
               "  --space SPEC       explore at a space budget, e.g. K=3,b=8\n"
               "                     (keys K cycle slots b mscale; default =\n"
               "                     paper budget; docs/SPACE_BUDGETS.md)\n"
               "  --budget STEPS     per-execution step budget\n"
               "  --seed S           seed for post-budget coins (default 1)\n"
               "  --moves M          --claim41: moves per process\n"
               "  --K K              --claim41: shrink constant\n"
               "  --max-violations K stop after K violations (default 8)\n"
               "  --max-executions K stop after K executions (0 = unlimited)\n"
               "  --max-states K     stop after K expanded states\n"
               "  --jobs J           leaf-grading worker threads (default 1\n"
               "                     = grade inline; 0 = one per core);\n"
               "                     results are byte-identical at any J\n"
               "  --inputs CSV       explore one input cell (e.g. 0,1,1,0)\n"
               "                     instead of all 2^n vectors\n"
               "  --isolate          grade each leaf in a fork()ed child\n"
               "                     (crashes become worker-crash findings)\n"
               "  --cache-map        legacy unordered_map seen-state cache\n"
               "                     (default: compact fingerprint table)\n"
               "  --max-cache-mb M   seen-state cache budget; over it the\n"
               "                     cache evicts deep entries (compact only)\n"
               "  --checkpoint-out F write a .bprc-frontier checkpoint to F\n"
               "                     (at the end, and see --checkpoint-every)\n"
               "  --checkpoint-every K  also checkpoint every K executions\n"
               "  --resume F         continue a saved frontier (config must\n"
               "                     match; resumed digest equals an\n"
               "                     uninterrupted run's)\n"
               "  --frontier-split I/K  explore root slice I of K (offline\n"
               "                     sharding; union of slices covers the\n"
               "                     tree). Needs --inputs.\n"
               "  --out DIR          write .bprc-repro artifacts here\n"
               "  --stats            states/sec and prune-ratio report\n"
               "  --no-sleep-sets    disable partial-order reduction\n"
               "  --no-state-cache   disable seen-state merging\n"
               "  --fresh-runtime    new SimRuntime per execution (default\n"
               "                     reuses one via reset())\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "bprc_explore: %s needs a value\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--smoke") opt.smoke = true;
    else if (arg == "--claim41") opt.claim41 = true;
    else if (arg == "--list") opt.list = true;
    else if (arg == "--stats") opt.stats = true;
    else if (arg == "--no-sleep-sets") opt.sleep_sets = false;
    else if (arg == "--no-state-cache") opt.state_cache = false;
    else if (arg == "--fresh-runtime") opt.reuse_runtime = false;
    else if (arg == "--protocol") { if (!(v = need_value(i))) return false; opt.protocols.push_back(v); }
    else if (arg == "--n") { if (!(v = need_value(i))) return false; opt.n = std::atoi(v); }
    else if (arg == "--depth") { if (!(v = need_value(i))) return false; opt.depth = std::strtoull(v, nullptr, 10); }
    else if (arg == "--coin-flips") { if (!(v = need_value(i))) return false; opt.coin_flips = std::strtoull(v, nullptr, 10); }
    else if (arg == "--register-semantics") {
      if (!(v = need_value(i))) return false;
      if (!register_semantics_from_string(v, &opt.semantics)) {
        std::fprintf(stderr,
                     "bprc_explore: unknown register semantics '%s' "
                     "(this build knows atomic, regular, safe)\n", v);
        return false;
      }
    }
    else if (arg == "--space") {
      if (!(v = need_value(i))) return false;
      std::string why;
      const auto budget = SpaceBudget::parse(v, &why);
      if (!budget) {
        std::fprintf(stderr, "bprc_explore: bad --space '%s': %s\n", v,
                     why.c_str());
        return false;
      }
      opt.space = *budget;
    }
    else if (arg == "--max-stale-reads") { if (!(v = need_value(i))) return false; opt.max_stale_reads = std::strtoull(v, nullptr, 10); }
    else if (arg == "--budget") { if (!(v = need_value(i))) return false; opt.budget = std::strtoull(v, nullptr, 10); }
    else if (arg == "--seed") { if (!(v = need_value(i))) return false; opt.seed = std::strtoull(v, nullptr, 10); }
    else if (arg == "--moves") { if (!(v = need_value(i))) return false; opt.moves = std::atoi(v); }
    else if (arg == "--K") { if (!(v = need_value(i))) return false; opt.strip_k = std::atoi(v); }
    else if (arg == "--max-violations") { if (!(v = need_value(i))) return false; opt.max_violations = std::strtoull(v, nullptr, 10); }
    else if (arg == "--max-executions") { if (!(v = need_value(i))) return false; opt.max_executions = std::strtoull(v, nullptr, 10); }
    else if (arg == "--max-states") { if (!(v = need_value(i))) return false; opt.max_states = std::strtoull(v, nullptr, 10); }
    else if (arg == "--jobs") { if (!(v = need_value(i))) return false; opt.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10)); }
    else if (arg == "--isolate") opt.isolate = true;
    else if (arg == "--cache-map") opt.compact_cache = false;
    else if (arg == "--max-cache-mb") { if (!(v = need_value(i))) return false; opt.max_cache_mb = std::strtoull(v, nullptr, 10); }
    else if (arg == "--checkpoint-out") { if (!(v = need_value(i))) return false; opt.checkpoint_out = v; }
    else if (arg == "--checkpoint-every") { if (!(v = need_value(i))) return false; opt.checkpoint_every = std::strtoull(v, nullptr, 10); }
    else if (arg == "--resume") { if (!(v = need_value(i))) return false; opt.resume_path = v; }
    else if (arg == "--frontier-split") {
      if (!(v = need_value(i))) return false;
      char* slash = nullptr;
      opt.split_index = static_cast<std::uint32_t>(std::strtoul(v, &slash, 10));
      if (slash == nullptr || *slash != '/') {
        std::fprintf(stderr, "bprc_explore: --frontier-split wants I/K\n");
        return false;
      }
      opt.split_count = static_cast<std::uint32_t>(std::strtoul(slash + 1, nullptr, 10));
    }
    else if (arg == "--inputs") {
      if (!(v = need_value(i))) return false;
      opt.inputs.clear();
      const char* p = v;
      while (*p != '\0') {
        char* end = nullptr;
        opt.inputs.push_back(static_cast<int>(std::strtol(p, &end, 10)));
        if (end == p) {
          std::fprintf(stderr, "bprc_explore: bad --inputs '%s'\n", v);
          return false;
        }
        p = *end == ',' ? end + 1 : end;
      }
    }
    else if (arg == "--out") { if (!(v = need_value(i))) return false; opt.out_dir = v; }
    else if (arg == "--help" || arg == "-h") { usage(stdout); std::exit(0); }
    else {
      std::fprintf(stderr, "bprc_explore: unknown option %s\n", arg.c_str());
      usage(stderr);
      return false;
    }
  }
  if (opt.n < 1 || opt.n > 8) {
    std::fprintf(stderr, "bprc_explore: --n must be in [1, 8] "
                         "(exhaustive exploration is exponential)\n");
    return false;
  }
  if (!opt.inputs.empty() &&
      opt.inputs.size() != static_cast<std::size_t>(opt.n)) {
    std::fprintf(stderr, "bprc_explore: --inputs wants %d values\n", opt.n);
    return false;
  }
  if (opt.isolate && opt.jobs > 1) {
    std::fprintf(stderr,
                 "bprc_explore: --isolate forks per leaf; use --jobs 1\n");
    return false;
  }
  if (opt.split_count > 1 && opt.split_index >= opt.split_count) {
    std::fprintf(stderr, "bprc_explore: --frontier-split index out of range\n");
    return false;
  }
  const bool cell_only = !opt.resume_path.empty() ||
                         !opt.checkpoint_out.empty() || opt.split_count > 1;
  if (cell_only && (opt.inputs.empty() || opt.protocols.size() != 1)) {
    std::fprintf(stderr,
                 "bprc_explore: --resume/--checkpoint-out/--frontier-split "
                 "pin one exploration cell; give one --protocol and "
                 "--inputs\n");
    return false;
  }
  return true;
}

ExploreLimits build_limits(const Options& opt) {
  ExploreLimits limits;
  limits.branch_depth = opt.depth;
  limits.max_coin_flips = opt.coin_flips;
  limits.semantics = opt.semantics;
  limits.max_stale_reads = opt.max_stale_reads;
  limits.max_run_steps = opt.budget;
  limits.max_violations = opt.max_violations;
  limits.max_executions = opt.max_executions;
  limits.max_states = opt.max_states;
  limits.sleep_sets = opt.sleep_sets;
  limits.state_cache = opt.state_cache;
  limits.grade_jobs = opt.jobs == 0 ? engine::default_jobs() : opt.jobs;
  limits.compact_cache = opt.compact_cache;
  limits.max_cache_bytes = opt.max_cache_mb * 1024 * 1024;
  limits.isolate_leaves = opt.isolate;
  limits.split_index = opt.split_index;
  limits.split_count = opt.split_count;
  return limits;
}

void print_stats(const ExploreStats& s) {
  const std::uint64_t frontier =
      s.states_visited + s.states_merged + s.sleep_pruned;
  const double denom = frontier > 0 ? static_cast<double>(frontier) : 1.0;
  std::printf(
      "  stats: %llu executions (%llu complete, %llu truncated, %llu "
      "pruned), %llu states in %.2fs (%.0f states/s)\n",
      static_cast<unsigned long long>(s.executions),
      static_cast<unsigned long long>(s.complete_runs),
      static_cast<unsigned long long>(s.truncated_runs),
      static_cast<unsigned long long>(s.pruned_runs),
      static_cast<unsigned long long>(s.states_visited), s.seconds,
      s.seconds > 0 ? static_cast<double>(s.states_visited) / s.seconds : 0.0);
  std::printf(
      "  prune: %.1f%% state-cache merges, %.1f%% sleep-set skips "
      "(%llu merged, %llu slept, %llu blocked), %llu coin branches, "
      "max depth %llu, %llu sim steps\n",
      100.0 * static_cast<double>(s.states_merged) / denom,
      100.0 * static_cast<double>(s.sleep_pruned) / denom,
      static_cast<unsigned long long>(s.states_merged),
      static_cast<unsigned long long>(s.sleep_pruned),
      static_cast<unsigned long long>(s.sleep_blocked),
      static_cast<unsigned long long>(s.coin_branches),
      static_cast<unsigned long long>(s.max_trail_depth),
      static_cast<unsigned long long>(s.total_steps));
  std::printf(
      "  cache: %llu entries, peak %.2f MiB, %llu eviction(s); "
      "%llu worker crash(es); %.0f exec/s wall\n",
      static_cast<unsigned long long>(s.cache_entries),
      static_cast<double>(s.peak_cache_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(s.cache_evictions),
      static_cast<unsigned long long>(s.worker_crashes),
      s.seconds > 0 ? static_cast<double>(s.executions) / s.seconds : 0.0);
  std::printf("  schedule digest: %016llx%s\n",
              static_cast<unsigned long long>(s.schedule_digest),
              s.complete ? "" : "  [INCOMPLETE: a safety valve fired]");
}

/// Writes one artifact per violation; returns paths written.
std::vector<std::string> write_artifacts(const Options& opt,
                                         const ConsensusExploreReport& report,
                                         std::size_t* artifact_index) {
  std::vector<std::string> paths;
  if (opt.out_dir.empty()) return paths;
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);  // best effort
  for (const ExploreViolation& v : report.violations) {
    const fault::Repro repro = make_explore_repro(report.config, v);
    std::string path = opt.out_dir;
    if (!path.empty() && path.back() != '/') path += '/';
    path += report.config.protocol + "-explore-n" +
            std::to_string(report.config.inputs.size()) + "-" +
            std::to_string((*artifact_index)++) + ".bprc-repro";
    if (fault::save_repro(path, repro)) {
      paths.push_back(path);
    } else {
      std::fprintf(stderr, "bprc_explore: cannot write %s\n", path.c_str());
    }
  }
  return paths;
}

struct ProtocolOutcome {
  std::uint64_t violations = 0;
  bool complete = true;
  ExploreStats merged;  ///< stats summed over every input cell
};

ProtocolOutcome explore_one_protocol(const Options& opt,
                                     const std::string& name,
                                     std::size_t* artifact_index) {
  const ExploreLimits limits = build_limits(opt);
  const auto reports = explore_consensus_all_inputs(
      name, opt.n, opt.seed, limits, opt.reuse_runtime, opt.space);
  ProtocolOutcome outcome;
  for (const ConsensusExploreReport& report : reports) {
    outcome.violations += report.violations.size();
    outcome.complete = outcome.complete && report.stats.complete;
    outcome.merged.executions += report.stats.executions;
    outcome.merged.complete_runs += report.stats.complete_runs;
    outcome.merged.truncated_runs += report.stats.truncated_runs;
    outcome.merged.pruned_runs += report.stats.pruned_runs;
    outcome.merged.states_visited += report.stats.states_visited;
    outcome.merged.states_merged += report.stats.states_merged;
    outcome.merged.sleep_pruned += report.stats.sleep_pruned;
    outcome.merged.sleep_blocked += report.stats.sleep_blocked;
    outcome.merged.coin_branches += report.stats.coin_branches;
    outcome.merged.max_trail_depth =
        std::max(outcome.merged.max_trail_depth, report.stats.max_trail_depth);
    outcome.merged.total_steps += report.stats.total_steps;
    outcome.merged.worker_crashes += report.stats.worker_crashes;
    outcome.merged.cache_entries += report.stats.cache_entries;
    outcome.merged.peak_cache_bytes =
        std::max(outcome.merged.peak_cache_bytes, report.stats.peak_cache_bytes);
    outcome.merged.cache_evictions += report.stats.cache_evictions;
    outcome.merged.seconds += report.stats.seconds;
    outcome.merged.schedule_digest =
        fnv_mix(outcome.merged.schedule_digest, report.stats.schedule_digest);
    outcome.merged.complete = outcome.complete;
    for (const ExploreViolation& v : report.violations) {
      std::fprintf(stderr, "VIOLATION %s: protocol=%s inputs=",
                   to_string(v.failure), name.c_str());
      for (std::size_t i = 0; i < report.config.inputs.size(); ++i) {
        std::fprintf(stderr, "%s%d", i ? "," : "", report.config.inputs[i]);
      }
      std::fprintf(stderr, " schedule-len=%zu %s\n", v.schedule.size(),
                   v.note.c_str());
    }
    const auto paths = write_artifacts(opt, report, artifact_index);
    for (const std::string& p : paths) {
      std::fprintf(stderr, "  artifact: %s  (re-run: bprc_torture --replay "
                           "%s)\n",
                   p.c_str(), p.c_str());
    }
  }
  return outcome;
}

int run_claim41(const Options& opt) {
  ExploreLimits limits = build_limits(opt);
  const std::uint64_t need = static_cast<std::uint64_t>(opt.n) *
                             static_cast<std::uint64_t>(opt.moves);
  if (limits.branch_depth < need) limits.branch_depth = need;
  const ExploreResult result =
      explore_token_game(opt.n, opt.strip_k, opt.moves, limits, opt.seed,
                         opt.reuse_runtime);
  std::printf("claim41 n=%d K=%d moves=%d: %llu states, %llu executions%s\n",
              opt.n, opt.strip_k, opt.moves,
              static_cast<unsigned long long>(result.stats.states_visited),
              static_cast<unsigned long long>(result.stats.executions),
              result.ok() ? "" : "  [DIVERGED]");
  for (const ExploreViolation& v : result.violations) {
    std::fprintf(stderr, "VIOLATION %s: %s\n", to_string(v.failure),
                 v.note.c_str());
  }
  if (opt.stats) print_stats(result.stats);
  if (!result.stats.complete) {
    std::fprintf(stderr, "bprc_explore: claim41 exploration incomplete\n");
    return 1;
  }
  return result.ok() ? 0 : 1;
}

/// One (protocol, inputs) cell — the mode --inputs selects and the only
/// one checkpoint/resume and frontier splits compose with (a frontier
/// file pins exactly one cell's configuration).
int run_single_cell(const Options& opt, const std::string& name) {
  ConsensusExploreConfig config;
  config.protocol = name;
  config.inputs = opt.inputs;
  config.seed = opt.seed;
  config.space = opt.space;
  config.limits = build_limits(opt);
  config.reuse_runtime = opt.reuse_runtime;

  FrontierOptions fopts;
  fopts.checkpoint_path = opt.checkpoint_out;
  fopts.checkpoint_every = opt.checkpoint_every;
  std::optional<Frontier> resumed;
  if (!opt.resume_path.empty()) {
    std::string err;
    resumed = load_frontier(opt.resume_path, &err);
    if (!resumed.has_value()) {
      std::fprintf(stderr, "bprc_explore: cannot resume %s: %s\n",
                   opt.resume_path.c_str(), err.c_str());
      return 2;
    }
    fopts.resume = &*resumed;
  }
  const bool use_frontier = fopts.resume != nullptr ||
                            !fopts.checkpoint_path.empty();
  const ConsensusExploreReport report =
      explore_consensus(config, use_frontier ? &fopts : nullptr);

  for (const ExploreViolation& v : report.violations) {
    std::fprintf(stderr, "VIOLATION %s: protocol=%s schedule-len=%zu %s\n",
                 to_string(v.failure), name.c_str(), v.schedule.size(),
                 v.note.c_str());
  }
  std::size_t artifact_index = 0;
  const auto paths = write_artifacts(opt, report, &artifact_index);
  for (const std::string& p : paths) {
    std::fprintf(stderr, "  artifact: %s\n", p.c_str());
  }
  std::printf("%-16s n=%d depth=%llu cell: %llu states, %llu executions, "
              "%zu violation(s)%s\n",
              name.c_str(), opt.n,
              static_cast<unsigned long long>(opt.depth),
              static_cast<unsigned long long>(report.stats.states_visited),
              static_cast<unsigned long long>(report.stats.executions),
              report.violations.size(),
              report.stats.complete ? "" : "  [incomplete]");
  if (opt.stats) print_stats(report.stats);
  if (!report.violations.empty()) return 1;
  if (!report.stats.complete) {
    // A valve stop with a checkpoint on disk is a scheduled pause, not a
    // failed verification: the frontier resumes it.
    if (!opt.checkpoint_out.empty()) return 0;
    std::fprintf(stderr,
                 "bprc_explore: exploration incomplete (a safety valve "
                 "fired); not a verification result\n");
    return 1;
  }
  return 0;
}

int run_explore(const Options& opt) {
  std::vector<std::string> protocols = opt.protocols;
  if (protocols.empty()) protocols = fault::protocol_names();
  // Validate against the full registry: an explicit --protocol may name a
  // crashes_process protocol (e.g. broken-segv, for --isolate runs) that
  // protocol_names() deliberately never lists.
  for (const std::string& name : protocols) {
    const auto& registry = fault::protocol_registry();
    const bool known =
        std::any_of(registry.begin(), registry.end(),
                    [&](const fault::ProtocolSpec& spec) {
                      return spec.name == name;
                    });
    if (!known) {
      std::fprintf(stderr, "bprc_explore: unknown protocol '%s'\n",
                   name.c_str());
      return 2;
    }
  }
  if (!opt.inputs.empty()) {
    if (protocols.size() != 1) {
      std::fprintf(stderr, "bprc_explore: --inputs wants one --protocol\n");
      return 2;
    }
    return run_single_cell(opt, protocols.front());
  }
  std::size_t artifact_index = 0;
  std::uint64_t total_violations = 0;
  bool all_complete = true;
  for (const std::string& name : protocols) {
    const ProtocolOutcome outcome =
        explore_one_protocol(opt, name, &artifact_index);
    std::printf("%-16s n=%d depth=%llu: %llu states, %llu executions, "
                "%llu violation(s)%s\n",
                name.c_str(), opt.n,
                static_cast<unsigned long long>(opt.depth),
                static_cast<unsigned long long>(outcome.merged.states_visited),
                static_cast<unsigned long long>(outcome.merged.executions),
                static_cast<unsigned long long>(outcome.violations),
                outcome.complete ? "" : "  [incomplete]");
    if (opt.stats) print_stats(outcome.merged);
    total_violations += outcome.violations;
    all_complete = all_complete && outcome.complete;
  }
  if (total_violations > 0) return 1;
  if (!all_complete) {
    std::fprintf(stderr,
                 "bprc_explore: exploration incomplete (a safety valve "
                 "fired); not a verification result\n");
    return 1;
  }
  return 0;
}

/// --smoke: the CI tier-1 mode. Exhaustively explores every registered
/// protocol at n=2 over all four input vectors; real protocols must come
/// out clean and seeded-broken protocols must be caught.
/// broken-needs-atomic is the one semantics-sensitive entry: its bug only
/// exists over weakened registers, so the smoke pins *both* directions —
/// clean under atomic semantics, caught under regular ones.
int run_smoke(const Options& base) {
  Options opt = base;
  opt.n = 2;
  opt.depth = std::min<std::uint64_t>(base.depth, 8);
  std::size_t artifact_index = 0;
  int rc = 0;
  for (const std::string& name :
       fault::protocol_names(/*include_broken=*/true)) {
    const bool broken = fault::protocol_spec(name).broken;
    Options cell = opt;
    bool weakened_pass = true;
    if (name == "broken-needs-atomic") {
      cell.semantics = RegisterSemantics::kAtomic;
      Options weak = opt;
      weak.semantics = RegisterSemantics::kRegular;
      const ProtocolOutcome weak_outcome =
          explore_one_protocol(weak, name, &artifact_index);
      weakened_pass = weak_outcome.violations > 0;
      std::printf("%-16s regular %llu states, %llu executions, %llu "
                  "violation(s) -> %s\n",
                  name.c_str(),
                  static_cast<unsigned long long>(
                      weak_outcome.merged.states_visited),
                  static_cast<unsigned long long>(
                      weak_outcome.merged.executions),
                  static_cast<unsigned long long>(weak_outcome.violations),
                  weakened_pass ? "ok" : "NOT CAUGHT");
      if (opt.stats) print_stats(weak_outcome.merged);
    }
    const ProtocolOutcome outcome =
        explore_one_protocol(cell, name, &artifact_index);
    const bool caught = outcome.violations > 0;
    // The semantics-sensitive protocol must be *clean* under this loop's
    // atomic pass — its "broken" obligation was discharged above.
    const bool expect_clean = !broken || name == "broken-needs-atomic";
    const bool pass = expect_clean ? (!caught && outcome.complete) : caught;
    std::printf("%-16s %-7s %llu states, %llu executions, %llu "
                "violation(s) -> %s\n",
                name.c_str(), broken ? "broken" : "real",
                static_cast<unsigned long long>(outcome.merged.states_visited),
                static_cast<unsigned long long>(outcome.merged.executions),
                static_cast<unsigned long long>(outcome.violations),
                pass ? "ok" : (expect_clean ? "FAILED" : "NOT CAUGHT"));
    if (opt.stats) print_stats(outcome.merged);
    if (!pass || !weakened_pass) rc = 1;
  }
  // Quick Claim 4.1 pass rides along: every interleaving of 2 processes
  // making 4 moves each.
  Options claim = opt;
  claim.moves = 4;
  const int claim_rc = run_claim41(claim);
  if (claim_rc != 0) rc = 1;
  std::printf("explore smoke: %s\n", rc == 0 ? "OK" : "FAILED");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (opt.list) {
    std::printf("protocols:");
    for (const auto& name : fault::protocol_names(/*include_broken=*/true)) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }
  if (opt.smoke) return run_smoke(opt);
  if (opt.claim41) return run_claim41(opt);
  return run_explore(opt);
}
