// fetch&cons — the universal primitive the paper's introduction promises:
// "Such an algorithm provides a basis for constructing novel universal
//  synchronization primitives, such as the fetch and cons of [H88]..."
//
//   $ ./examples/fetch_and_cons
//
// Six processes concurrently cons cells onto one shared list. Each cons
// is linearized through the universal log (helping makes it wait-free);
// at the end every process materializes the identical list even though
// every position was contested. The binary consensus underneath is the
// paper's bounded polynomial protocol — so the whole tower runs on
// bounded atomic registers.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"

int main() {
  using namespace bprc;

  const int kProcs = 6;
  const int kConsEach = 2;

  SimRuntime rt(kProcs, std::make_unique<RandomAdversary>(1989), 1989);
  Replicated<std::vector<std::uint32_t>> list(
      rt, /*capacity=*/kProcs * kConsEach + kProcs,
      [](Runtime& inner) {
        return std::make_unique<BPRCConsensus>(
            inner, BPRCParams::standard(inner.nprocs()));
      },
      /*initial=*/{},
      [](std::vector<std::uint32_t>& state, const UniversalLog::Entry& e) {
        state.push_back(e.payload);  // cons (append) the cell
      });

  std::vector<std::vector<int>> placements(kProcs);
  for (ProcId p = 0; p < kProcs; ++p) {
    rt.spawn(p, [&list, &placements, p] {
      for (int k = 0; k < kConsEach; ++k) {
        const auto cell = static_cast<std::uint32_t>(100 * (p + 1) + k);
        placements[static_cast<std::size_t>(p)].push_back(list.update(cell));
      }
    });
  }

  const RunResult res = rt.run(4'000'000'000ull);
  if (res.reason != RunResult::Reason::kAllDone) {
    std::printf("run did not finish\n");
    return 1;
  }

  for (ProcId p = 0; p < kProcs; ++p) {
    std::printf("process %d cons'd cells at log slots:", p);
    for (const int s : placements[static_cast<std::size_t>(p)]) {
      std::printf(" %d", s);
    }
    std::printf("\n");
  }

  const auto value = list.materialize();
  std::printf("\nthe one agreed list (%zu cells): ", value.size());
  for (const auto cell : value) std::printf("%u ", cell);
  std::printf(
      "\n\n%llu primitive register operations; every register bounded.\n",
      static_cast<unsigned long long>(res.steps));
  return value.size() == static_cast<std::size_t>(kProcs * kConsEach) ? 0 : 1;
}
