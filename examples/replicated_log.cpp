// Replicated log: the universal-construction pattern the paper's
// introduction motivates (fetch&cons / sticky bits), built from a sequence
// of binary consensus instances.
//
//   $ ./examples/replicated_log
//
// Four replicas each generate a local stream of commands (bits); for every
// log slot they run one BPRC instance proposing their own next command,
// then append whatever the instance decided. Wait-freedom means a replica
// never blocks on the others — it can fill its log at its own pace — and
// consistency means all replicas end with the identical log even though
// every slot was contested.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/api.hpp"

int main() {
  using namespace bprc;

  const int kReplicas = 4;
  const int kSlots = 12;

  SimRuntime rt(kReplicas, std::make_unique<RandomAdversary>(42), 42);

  // One single-shot consensus object per log slot.
  std::vector<std::unique_ptr<BPRCConsensus>> slots;
  slots.reserve(kSlots);
  for (int s = 0; s < kSlots; ++s) {
    slots.push_back(std::make_unique<BPRCConsensus>(
        rt, BPRCParams::standard(kReplicas)));
  }

  std::vector<std::vector<int>> logs(kReplicas);
  std::vector<std::vector<int>> wanted(kReplicas);

  for (ProcId p = 0; p < kReplicas; ++p) {
    rt.spawn(p, [&rt, &slots, &logs, &wanted, p] {
      for (int s = 0; s < kSlots; ++s) {
        // The replica's own next command: a pseudo-random bit from its
        // private stream (in a real system: the head of its client queue).
        const int command = static_cast<int>(rt.rng()() & 1);
        wanted[static_cast<std::size_t>(p)].push_back(command);
        const int agreed =
            slots[static_cast<std::size_t>(s)]->propose(command);
        logs[static_cast<std::size_t>(p)].push_back(agreed);
      }
    });
  }

  const RunResult res = rt.run(2'000'000'000ull);
  if (res.reason != RunResult::Reason::kAllDone) {
    std::printf("log replication did not finish (budget)\n");
    return 1;
  }

  std::printf("replica |  proposed stream  |  agreed log\n");
  for (ProcId p = 0; p < kReplicas; ++p) {
    std::printf("   %d    |  ", p);
    for (const int b : wanted[static_cast<std::size_t>(p)]) {
      std::printf("%d", b);
    }
    std::printf("     |  ");
    for (const int b : logs[static_cast<std::size_t>(p)]) std::printf("%d", b);
    std::printf("\n");
  }

  for (ProcId p = 1; p < kReplicas; ++p) {
    if (logs[static_cast<std::size_t>(p)] != logs[0]) {
      std::printf("REPLICA DIVERGENCE — this must never happen\n");
      return 1;
    }
  }
  std::printf(
      "\nall %d replicas hold the identical %d-entry log "
      "(%llu register ops total).\n",
      kReplicas, kSlots, static_cast<unsigned long long>(res.steps));
  return 0;
}
