// Adversary lab: pit every consensus protocol against every scheduler.
//
//   $ ./examples/adversary_lab [n] [seed]
//
// Runs the four protocols (BPRC, Aspnes–Herlihy, local-coin, strong-coin)
// under each adversary strategy in the deterministic simulator and prints
// a matrix of steps-to-decide. Good for building intuition about WHICH
// schedules hurt WHICH algorithms: watch the local-coin column blow up
// under lockstep, and everything shrug off leader suppression.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"

int main(int argc, char** argv) {
  using namespace bprc;

  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::uint64_t seed = argc > 2
                                 ? static_cast<std::uint64_t>(
                                       std::strtoull(argv[2], nullptr, 10))
                                 : 7;
  if (n < 1 || n > 32) {
    std::fprintf(stderr, "usage: %s [n in 1..32] [seed]\n", argv[0]);
    return 2;
  }

  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs[static_cast<std::size_t>(i)] = i % 2;

  struct Proto {
    std::string name;
    ProtocolFactory factory;
  };
  const std::vector<Proto> protocols = {
      {"bprc",
       [n](Runtime& rt) {
         return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n));
       }},
      {"aspnes-herlihy",
       [n](Runtime& rt) {
         return std::make_unique<AspnesHerlihyConsensus>(
             rt, CoinParams::standard(n));
       }},
      {"local-coin",
       [](Runtime& rt) { return std::make_unique<LocalCoinConsensus>(rt); }},
      {"strong-coin", [seed](Runtime& rt) {
         return std::make_unique<StrongCoinConsensus>(rt, seed ^ 0xABC);
       }}};

  std::printf("n=%d, split inputs, seed=%llu — steps until last decision\n\n",
              n, static_cast<unsigned long long>(seed));
  Table table({"protocol", "random", "round-robin", "lockstep",
               "leader-suppress", "coin-bias", "decision"});
  for (const auto& proto : protocols) {
    std::vector<std::string> row{proto.name};
    int decision = -1;
    for (std::size_t advk = 0; advk < 5; ++advk) {
      auto advs = standard_adversaries(seed);
      const auto res = run_consensus_sim(proto.factory, inputs,
                                         std::move(advs[advk]), seed,
                                         2'000'000'000ull);
      if (!res.ok()) {
        row.push_back("FAILED");
        continue;
      }
      row.push_back(Table::num(res.total_steps));
      decision = res.decisions[0];
    }
    row.push_back(decision >= 0 ? Table::num(decision) : "?");
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\n(decisions may differ BETWEEN protocols/adversaries — each cell is\n"
      "an independent consensus instance; within a cell all n processes\n"
      "agreed, which is the property that matters.)\n");
  return 0;
}
