// Coin visualizer: watch the §3 random walk fight the adversary.
//
//   $ ./examples/coin_visualizer [n] [b] [adversary]
//
// Runs one weak-shared-coin toss in the simulator and prints the walk
// value over time as an ASCII strip chart, together with the decision
// barriers ±b·n and each process's final answer. Try
//   ./coin_visualizer 4 4 coin-bias
// to see the adversary's signature: the walk gets dragged back toward 0
// whenever it strays, stretching the game out — but the barriers win in
// expected O((b+1)²n²) steps regardless.
//
// The walk trace is captured by an Adversary decorator that inspects each
// scheduled process's pending write — precisely the information the
// strong adversary legitimately has, demonstrating that part of the API.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"

namespace {

using namespace bprc;

/// Decorator: accumulates the walk value by watching pending counter
/// writes (payload ±1 on a value register) of whichever process the inner
/// strategy schedules.
class WalkTracer final : public Adversary {
 public:
  WalkTracer(std::unique_ptr<Adversary> inner, int n,
             std::vector<std::int64_t>* trace)
      : inner_(std::move(inner)), n_(n), trace_(trace) {}

  ProcId pick(SimCtl& ctl) override {
    const ProcId p = inner_->pick(ctl);
    if (p >= 0) {
      const OpDesc& op = ctl.proc(p).pending;
      // Counter writes carry their walk delta as the payload; arrow
      // writes and scans carry 0.
      if (op.kind == OpDesc::Kind::kWrite && op.object >= 0 &&
          op.object < n_ && op.payload != 0) {
        walk_ += op.payload;
        trace_->push_back(walk_);
      }
    }
    return p;
  }
  std::string name() const override { return inner_->name() + "+trace"; }

 private:
  std::unique_ptr<Adversary> inner_;
  int n_;
  std::vector<std::int64_t>* trace_;
  std::int64_t walk_ = 0;
};

std::unique_ptr<Adversary> pick_adversary(const std::string& name,
                                          std::uint64_t seed) {
  if (name == "coin-bias") return std::make_unique<CoinBiasAdversary>(seed);
  if (name == "lockstep") return std::make_unique<LockstepAdversary>(seed);
  if (name == "round-robin") return std::make_unique<RoundRobinAdversary>();
  return std::make_unique<RandomAdversary>(seed);
}

void print_strip_chart(const std::vector<std::int64_t>& trace,
                       std::int64_t barrier) {
  if (trace.empty()) {
    std::printf("(no walk steps recorded)\n");
    return;
  }
  // Columns: walk value from -barrier-2 .. +barrier+2; rows: time,
  // downsampled to at most 40 rows.
  const std::int64_t lo = -barrier - 2;
  const std::int64_t hi = barrier + 2;
  const std::size_t rows = 40;
  const std::size_t stride = std::max<std::size_t>(1, trace.size() / rows);
  std::printf("walk over time (one row per %zu steps; | = barriers):\n\n",
              stride);
  for (std::size_t i = 0; i < trace.size(); i += stride) {
    const std::int64_t v = trace[i];
    std::string line(static_cast<std::size_t>(hi - lo + 1), ' ');
    line[static_cast<std::size_t>(-barrier - lo)] = '|';
    line[static_cast<std::size_t>(barrier - lo)] = '|';
    line[static_cast<std::size_t>(0 - lo)] = '.';
    const std::int64_t clamped = std::clamp(v, lo, hi);
    line[static_cast<std::size_t>(clamped - lo)] = '*';
    std::printf("%8zu %s %+lld\n", i, line.c_str(),
                static_cast<long long>(v));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  const int b = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string adv = argc > 3 ? argv[3] : "coin-bias";
  if (n < 1 || n > 16 || b < 2) {
    std::fprintf(stderr, "usage: %s [n in 1..16] [b >= 2] [adversary]\n",
                 argv[0]);
    return 2;
  }
  const std::uint64_t seed = 20260706;

  std::vector<std::int64_t> trace;
  SimRuntime rt(n,
                std::make_unique<WalkTracer>(pick_adversary(adv, seed), n,
                                             &trace),
                seed);
  const CoinParams params = CoinParams::standard(n, b);
  SharedCoin coin(rt, params);

  std::vector<CoinValue> votes(static_cast<std::size_t>(n),
                               CoinValue::kUndecided);
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&coin, &votes, p] {
      votes[static_cast<std::size_t>(p)] = coin.toss();
    });
  }
  const RunResult res = rt.run(500'000'000ull);
  if (res.reason != RunResult::Reason::kAllDone) {
    std::printf("toss did not finish\n");
    return 1;
  }

  const std::int64_t barrier = static_cast<std::int64_t>(b) * n;
  std::printf(
      "n=%d  b=%d  adversary=%s   barriers at %+lld / %+lld   m=%lld\n\n",
      n, b, adv.c_str(), static_cast<long long>(barrier),
      static_cast<long long>(-barrier), static_cast<long long>(params.m));
  print_strip_chart(trace, barrier);
  std::printf(
      "\ntotal walk steps: %llu (Lemma 3.2 bound: (b+1)^2 n^2 = %d)\n",
      static_cast<unsigned long long>(coin.walk_steps()),
      (b + 1) * (b + 1) * n * n);
  std::printf("max |counter|:    %lld (hard cap m+1 = %lld)\n",
              static_cast<long long>(coin.max_counter_magnitude()),
              static_cast<long long>(params.m + 1));
  std::printf("overflow endings: %llu\n\n",
              static_cast<unsigned long long>(coin.overflows()));
  std::printf("votes: ");
  bool heads_seen = false;
  bool tails_seen = false;
  for (ProcId p = 0; p < n; ++p) {
    std::printf(" p%d=%s", p, to_string(votes[static_cast<std::size_t>(p)]));
    heads_seen = heads_seen ||
                 votes[static_cast<std::size_t>(p)] == CoinValue::kHeads;
    tails_seen = tails_seen ||
                 votes[static_cast<std::size_t>(p)] == CoinValue::kTails;
  }
  std::printf("\n=> %s\n",
              heads_seen && tails_seen
                  ? "DISAGREEMENT (the <= 1/b event — rerun and it is rare)"
                  : "unanimous, as expected with probability >= (b-1)/b");
  return 0;
}
