// Leader election with a sticky register — the [P89] primitive from the
// paper's introduction, in action.
//
//   $ ./examples/sticky_election
//
// Eight processes race to jam their own id into one write-once sticky
// register; whoever the underlying (bounded, polynomial, register-only)
// consensus linearizes first becomes the leader, and every process —
// including pure observers that never jammed — learns the same winner.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/api.hpp"

int main() {
  using namespace bprc;

  const int kCandidates = 6;
  const int kObservers = 2;
  const int n = kCandidates + kObservers;

  SimRuntime rt(n, std::make_unique<LockstepAdversary>(7), 7);
  StickyRegister leader_slot(rt, /*value_bits=*/8, [](Runtime& inner) {
    return std::make_unique<BPRCConsensus>(
        inner, BPRCParams::standard(inner.nprocs()));
  });

  std::vector<std::uint64_t> winner_seen(static_cast<std::size_t>(n),
                                         ~std::uint64_t{0});
  for (ProcId p = 0; p < kCandidates; ++p) {
    rt.spawn(p, [&leader_slot, &winner_seen, p] {
      winner_seen[static_cast<std::size_t>(p)] =
          leader_slot.jam(static_cast<std::uint64_t>(p));
    });
  }
  for (ProcId p = kCandidates; p < n; ++p) {
    rt.spawn(p, [&leader_slot, &winner_seen, p] {
      // Observers poll without ever proposing.
      while (true) {
        if (const auto w = leader_slot.read()) {
          winner_seen[static_cast<std::size_t>(p)] = *w;
          return;
        }
      }
    });
  }

  const RunResult res = rt.run(2'000'000'000ull);
  if (res.reason != RunResult::Reason::kAllDone) {
    std::printf("election did not finish\n");
    return 1;
  }

  std::printf("candidates 0..%d raced; everyone sees the leader:\n",
              kCandidates - 1);
  for (ProcId p = 0; p < n; ++p) {
    std::printf("  %s %d -> leader = %llu\n",
                p < kCandidates ? "candidate" : "observer ", p,
                static_cast<unsigned long long>(
                    winner_seen[static_cast<std::size_t>(p)]));
  }
  for (ProcId p = 1; p < n; ++p) {
    if (winner_seen[static_cast<std::size_t>(p)] != winner_seen[0]) {
      std::printf("DISAGREEMENT — must never happen\n");
      return 1;
    }
  }
  std::printf("unanimous. (%llu register operations)\n",
              static_cast<unsigned long long>(res.steps));
  return 0;
}
