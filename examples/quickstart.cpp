// Quickstart: wait-free randomized consensus among 5 OS threads.
//
//   $ ./examples/quickstart
//
// Five processes with mixed inputs run the BPRC protocol on the thread
// runtime (real preemption) and print the bit they all agreed on. This is
// the smallest complete use of the public API: pick a runtime, construct
// the protocol, have every process call propose().
#include <cstdio>
#include <memory>
#include <vector>

#include "core/api.hpp"

int main() {
  using namespace bprc;

  const std::vector<int> inputs = {0, 1, 1, 0, 1};
  std::printf("proposing:");
  for (const int v : inputs) std::printf(" %d", v);
  std::printf("\n");

  const ConsensusRunResult result = run_consensus_threads(
      [](Runtime& rt) {
        return std::make_unique<BPRCConsensus>(
            rt, BPRCParams::standard(rt.nprocs()));
      },
      inputs, /*seed=*/2026, /*max_steps=*/100'000'000);

  if (!result.ok()) {
    std::printf("consensus failed (this should never happen)\n");
    return 1;
  }

  std::printf("decided:  ");
  for (const int d : result.decisions) std::printf(" %d", d);
  std::printf("\n");
  std::printf(
      "agreement on %d after %llu primitive register operations;\n"
      "every shared register stayed within its static bound (max walk\n"
      "counter %lld of allowed %lld; rounds stored in shared memory: none).\n",
      result.decisions[0],
      static_cast<unsigned long long>(result.total_steps),
      static_cast<long long>(result.footprint.max_counter),
      static_cast<long long>(result.footprint.static_bound));
  return 0;
}
